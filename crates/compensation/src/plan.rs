//! Building compensating operation sequences from commit records.

use o2pc_common::{Key, Op};
use o2pc_storage::{CommitRecord, UndoRecord};

/// Which §3.1 decomposition model governs compensation at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CompensationModel {
    /// Semantic inverses per operation (counter-task supplied in advance,
    /// "e.g. a DELETE as compensation for an INSERT").
    #[default]
    Restricted,
    /// Before-image restoration of the whole write set.
    Generic,
}

/// The operations of one compensating subtransaction `CT_ij`, executed at
/// the site as an ordinary local transaction under strict 2PL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompensationPlan {
    /// Operations in execution order.
    pub ops: Vec<Op>,
}

impl CompensationPlan {
    /// Keys the plan writes (deduplicated, first-occurrence order).
    pub fn write_set(&self) -> Vec<Key> {
        let mut seen = std::collections::HashSet::new();
        let mut keys = Vec::new();
        for op in &self.ops {
            let k = op.key();
            if seen.insert(k) {
                keys.push(k);
            }
        }
        keys
    }

    /// An empty plan (read-only forward subtransaction: nothing to undo).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Semantic inverse of one forward operation. `undo` is the before-image the
/// forward execution logged (present for every mutating op).
fn invert(op: &Op, undo: Option<&UndoRecord>) -> Option<Op> {
    match *op {
        Op::Read(_) => None,
        Op::Add(k, d) => Some(Op::Add(k, -d)),
        Op::Insert(k, _) => Some(Op::Delete(k)),
        Op::Delete(k) => {
            let before = undo
                .and_then(|u| u.before)
                .expect("delete logged a before-image");
            Some(Op::Insert(k, before))
        }
        Op::Reserve(k, n) => Some(Op::Release(k, n)),
        // Releasing units is compensated by taking them back. `Add` rather
        // than `Reserve` keeps persistence of compensation: a `Reserve`
        // could fail on insufficient stock, and a CT must never fail.
        Op::Release(k, n) => Some(Op::Add(k, -(n as i64))),
        // Absolute writes have no semantic inverse: fall back to restoring
        // the before-image (or deleting a freshly-created key).
        Op::Write(k, _) => match undo.and_then(|u| u.before) {
            Some(v) => Some(Op::Write(k, v)),
            None => Some(Op::Delete(k)),
        },
    }
}

/// Build the compensation plan for a (locally) committed forward
/// subtransaction whose effects are described by `record`.
///
/// Restricted model: inverses of the forward operations, in reverse order.
/// Generic model: before-images of the write set, in reverse order (the
/// oldest before-image of each key wins, since restores are replayed in
/// reverse).
pub fn plan_compensation(model: CompensationModel, record: &CommitRecord) -> CompensationPlan {
    match model {
        CompensationModel::Restricted => {
            // Pair each mutating op with its undo record (same order).
            let mut undo_iter = record.undo.iter();
            let paired: Vec<(Op, Option<&UndoRecord>)> = record
                .ops
                .iter()
                .map(|op| {
                    if op.access_mode() == o2pc_common::AccessMode::Write {
                        (*op, undo_iter.next())
                    } else {
                        (*op, None)
                    }
                })
                .collect();
            let ops = paired
                .iter()
                .rev()
                .filter_map(|(op, undo)| invert(op, *undo))
                .collect();
            CompensationPlan { ops }
        }
        CompensationModel::Generic => {
            let ops = record
                .undo
                .iter()
                .rev()
                .map(|u| match u.before {
                    Some(v) => Op::Write(u.key, v),
                    None => Op::Delete(u.key),
                })
                .collect();
            CompensationPlan { ops }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{ExecId, GlobalTxnId, Value};
    use o2pc_storage::Store;

    fn exec(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    fn run_forward(store: &mut Store, ops: &[Op]) -> CommitRecord {
        let e = exec(0);
        for op in ops {
            store.apply(e, *op).unwrap();
        }
        store.commit(e)
    }

    fn run_plan(store: &mut Store, plan: &CompensationPlan) {
        let e = ExecId::CompSub(GlobalTxnId(0));
        for op in &plan.ops {
            store.apply(e, *op).unwrap();
        }
        store.commit(e);
    }

    #[test]
    fn restricted_add_inverts_exactly() {
        let mut s = Store::new();
        s.load(Key(1), Value(100));
        let rec = run_forward(&mut s, &[Op::Add(Key(1), 30), Op::Add(Key(1), -10)]);
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(plan.ops, vec![Op::Add(Key(1), 10), Op::Add(Key(1), -30)]);
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(1)), Some(Value(100)));
    }

    #[test]
    fn restricted_add_commutes_with_interleaved_updates() {
        // The essence of semantic compensation: another transaction's delta
        // applied between T and CT survives compensation.
        let mut s = Store::new();
        s.load(Key(1), Value(100));
        let rec = run_forward(&mut s, &[Op::Add(Key(1), 50)]);
        // Interleaved independent update (read T's uncompensated value).
        s.apply(exec(9), Op::Add(Key(1), 7)).unwrap();
        s.commit(exec(9));
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(1)), Some(Value(107)), "interleaved +7 preserved");
    }

    #[test]
    fn generic_model_clobbers_interleaved_updates() {
        // Before-image restoration: the interleaved delta is lost — the
        // documented cost of the generic model.
        let mut s = Store::new();
        s.load(Key(1), Value(100));
        let rec = run_forward(&mut s, &[Op::Add(Key(1), 50)]);
        s.apply(exec(9), Op::Add(Key(1), 7)).unwrap();
        s.commit(exec(9));
        let plan = plan_compensation(CompensationModel::Generic, &rec);
        run_plan(&mut s, &plan);
        assert_eq!(
            s.get(Key(1)),
            Some(Value(100)),
            "before-image restored verbatim"
        );
    }

    #[test]
    fn insert_compensated_by_delete() {
        let mut s = Store::new();
        let rec = run_forward(&mut s, &[Op::Insert(Key(2), Value(5))]);
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(plan.ops, vec![Op::Delete(Key(2))]);
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(2)), None);
    }

    #[test]
    fn delete_compensated_by_reinsert() {
        let mut s = Store::new();
        s.load(Key(3), Value(42));
        let rec = run_forward(&mut s, &[Op::Delete(Key(3))]);
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(plan.ops, vec![Op::Insert(Key(3), Value(42))]);
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(3)), Some(Value(42)));
    }

    #[test]
    fn reserve_compensated_by_release() {
        let mut s = Store::new();
        s.load(Key(4), Value(10));
        let rec = run_forward(&mut s, &[Op::Reserve(Key(4), 3)]);
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(plan.ops, vec![Op::Release(Key(4), 3)]);
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(4)), Some(Value(10)));
    }

    #[test]
    fn release_compensated_by_unconditional_take_back() {
        let mut s = Store::new();
        s.load(Key(4), Value(1));
        let rec = run_forward(&mut s, &[Op::Release(Key(4), 5)]);
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(
            plan.ops,
            vec![Op::Add(Key(4), -5)],
            "Add, not Reserve: CTs may not fail"
        );
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(4)), Some(Value(1)));
    }

    #[test]
    fn absolute_write_falls_back_to_before_image() {
        let mut s = Store::new();
        s.load(Key(5), Value(1));
        let rec = run_forward(
            &mut s,
            &[Op::Write(Key(5), Value(2)), Op::Write(Key(5), Value(3))],
        );
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        // Reverse order: undo 3→2, then 2→1.
        assert_eq!(
            plan.ops,
            vec![Op::Write(Key(5), Value(2)), Op::Write(Key(5), Value(1))]
        );
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(5)), Some(Value(1)));
    }

    #[test]
    fn reads_produce_no_compensation() {
        let mut s = Store::new();
        s.load(Key(1), Value(1));
        let rec = run_forward(&mut s, &[Op::Read(Key(1))]);
        for model in [CompensationModel::Restricted, CompensationModel::Generic] {
            let plan = plan_compensation(model, &rec);
            assert!(plan.is_empty(), "{model:?}");
        }
    }

    #[test]
    fn mixed_sequence_restores_in_reverse() {
        let mut s = Store::new();
        s.load(Key(1), Value(10));
        let rec = run_forward(
            &mut s,
            &[
                Op::Read(Key(1)),
                Op::Add(Key(1), 5),
                Op::Insert(Key(2), Value(1)),
                Op::Read(Key(2)),
                Op::Delete(Key(2)),
            ],
        );
        let plan = plan_compensation(CompensationModel::Restricted, &rec);
        assert_eq!(
            plan.ops,
            vec![
                Op::Insert(Key(2), Value(1)),
                Op::Delete(Key(2)),
                Op::Add(Key(1), -5)
            ]
        );
        run_plan(&mut s, &plan);
        assert_eq!(s.get(Key(1)), Some(Value(10)));
        assert_eq!(s.get(Key(2)), None);
    }

    #[test]
    fn generic_plan_write_set_covers_forward_write_set() {
        // Theorem 2's premise: CT_i writes at least all items T_i wrote.
        let mut s = Store::new();
        s.load(Key(1), Value(0));
        s.load(Key(2), Value(0));
        let rec = run_forward(
            &mut s,
            &[Op::Add(Key(1), 1), Op::Add(Key(2), 2), Op::Read(Key(1))],
        );
        for model in [CompensationModel::Restricted, CompensationModel::Generic] {
            let plan = plan_compensation(model, &rec);
            let fw = rec.write_set();
            for k in &fw {
                assert!(plan.write_set().contains(k), "{model:?} misses {k}");
            }
        }
    }

    #[test]
    fn generic_multiple_writes_same_key_restores_oldest() {
        let mut s = Store::new();
        s.load(Key(1), Value(1));
        let rec = run_forward(&mut s, &[Op::Write(Key(1), Value(2)), Op::Add(Key(1), 10)]);
        let plan = plan_compensation(CompensationModel::Generic, &rec);
        run_plan(&mut s, &plan);
        assert_eq!(
            s.get(Key(1)),
            Some(Value(1)),
            "reverse replay lands on the oldest image"
        );
    }
}
