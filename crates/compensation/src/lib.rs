//! # o2pc-compensation
//!
//! Compensating transactions (§3.2 of the paper, following [KLS90a]).
//!
//! A compensating transaction `CT_i` undoes `T_i`'s effects *semantically*,
//! without cascading aborts: transactions that read from `T_i` keep their
//! reads; `CT_i` merely re-establishes a consistent state. Two decomposition
//! models are supported, mirroring §3.1:
//!
//! * **Restricted model** ([`CompensationModel::Restricted`]): each forward
//!   operation comes from a repertoire with a registered inverse —
//!   `Add(k, d)` ↩ `Add(k, -d)`, `Insert` ↩ `Delete`, `Delete` ↩ re-`Insert`,
//!   `Reserve(k, n)` ↩ `Release(k, n)`. Inverses of commutative deltas are
//!   correct even when other transactions modified the item in between —
//!   this is what makes semantic atomicity *semantic*.
//! * **Generic model** ([`CompensationModel::Generic`]): no semantics is
//!   known, so compensation restores before-images of every item `T_i`
//!   wrote. This clobbers later writers (the price the paper acknowledges
//!   for the generic model), but satisfies Theorem 2's premise — `CT_i`
//!   writes at least all items `T_i` wrote — so atomicity of compensation is
//!   preserved in correct histories.
//!
//! **Persistence of compensation**: once initiated, a compensating
//! transaction must complete — it can only commit (so no commit protocol is
//! ever run for a `CT`). [`PersistenceGuard`] encodes the retry obligation
//! the execution engine honours when a `CT` subtransaction loses a local
//! deadlock: it is re-submitted until it commits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persistence;
pub mod plan;

pub use persistence::PersistenceGuard;
pub use plan::{plan_compensation, CompensationModel, CompensationPlan};
