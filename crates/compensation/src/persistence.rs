//! Persistence of compensation.
//!
//! "It is guaranteed that once compensation is initiated, it completes
//! successfully" (§3.2). Initiating a compensating transaction parallels the
//! decision to abort in the traditional setting — it is irreversible — so a
//! `CT` may be *delayed* (lock conflicts, deadlock victimhood) but never
//! abandoned. [`PersistenceGuard`] is the bookkeeping the engine uses to
//! honour that: each pending compensating subtransaction is tracked until it
//! commits, and every setback increments a retry counter instead of
//! dropping the obligation.

use o2pc_common::{GlobalTxnId, SiteId};
use std::collections::BTreeMap;

/// Tracks compensating subtransactions that have been initiated but have not
/// yet committed. The engine drains this to quiescence; a non-empty guard at
/// end of run is a semantic-atomicity violation.
#[derive(Clone, Debug, Default)]
pub struct PersistenceGuard {
    pending: BTreeMap<(GlobalTxnId, SiteId), u32>,
    completed: u64,
    total_retries: u64,
}

impl PersistenceGuard {
    /// New empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `CT_ij` has been initiated at `site`.
    pub fn initiated(&mut self, txn: GlobalTxnId, site: SiteId) {
        self.pending.entry((txn, site)).or_insert(0);
    }

    /// Record a setback (deadlock victimhood, transient rejection): the CT
    /// must be re-submitted. Returns the retry count so far.
    pub fn retried(&mut self, txn: GlobalTxnId, site: SiteId) -> u32 {
        let c = self
            .pending
            .get_mut(&(txn, site))
            .expect("retried a compensation that was never initiated");
        *c += 1;
        self.total_retries += 1;
        *c
    }

    /// Record successful completion.
    pub fn completed(&mut self, txn: GlobalTxnId, site: SiteId) {
        let removed = self.pending.remove(&(txn, site));
        debug_assert!(
            removed.is_some(),
            "completed a compensation that was never initiated"
        );
        self.completed += 1;
    }

    /// Is the compensation of `txn` at `site` still outstanding?
    pub fn is_pending(&self, txn: GlobalTxnId, site: SiteId) -> bool {
        self.pending.contains_key(&(txn, site))
    }

    /// All outstanding compensations.
    pub fn pending(&self) -> impl Iterator<Item = (GlobalTxnId, SiteId, u32)> + '_ {
        self.pending.iter().map(|(&(t, s), &r)| (t, s, r))
    }

    /// Number of outstanding compensations.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Completed compensations.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Total retries across all compensations (a measure of the extra
    /// conflicts the pessimistic path causes; fed into experiment E3).
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// True when no compensation is outstanding (quiescence condition).
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    #[test]
    fn lifecycle() {
        let mut p = PersistenceGuard::new();
        assert!(p.is_quiescent());
        p.initiated(g(1), SiteId(0));
        p.initiated(g(1), SiteId(1));
        assert_eq!(p.pending_count(), 2);
        assert!(p.is_pending(g(1), SiteId(0)));
        assert!(!p.is_quiescent());
        assert_eq!(p.retried(g(1), SiteId(0)), 1);
        assert_eq!(p.retried(g(1), SiteId(0)), 2);
        p.completed(g(1), SiteId(0));
        assert!(!p.is_pending(g(1), SiteId(0)));
        p.completed(g(1), SiteId(1));
        assert!(p.is_quiescent());
        assert_eq!(p.completed_count(), 2);
        assert_eq!(p.total_retries(), 2);
    }

    #[test]
    fn initiation_is_idempotent() {
        let mut p = PersistenceGuard::new();
        p.initiated(g(1), SiteId(0));
        p.retried(g(1), SiteId(0));
        p.initiated(g(1), SiteId(0));
        assert_eq!(
            p.pending().next(),
            Some((g(1), SiteId(0), 1)),
            "retry count preserved"
        );
    }

    #[test]
    #[should_panic(expected = "never initiated")]
    fn retry_of_unknown_panics() {
        let mut p = PersistenceGuard::new();
        p.retried(g(9), SiteId(0));
    }
}
