//! Property tests: compensation round-trips.
//!
//! * Restricted model, no interleaving: forward ⨟ compensation restores the
//!   exact initial state.
//! * Restricted model with interleaved commutative deltas: compensation
//!   preserves the interleaved work (semantic atomicity's raison d'être).
//! * Generic model, no interleaving: before-image restoration also restores
//!   the exact initial state.

use o2pc_common::{ExecId, GlobalTxnId, Key, Op, Value};
use o2pc_compensation::{plan_compensation, CompensationModel};
use o2pc_storage::Store;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum SemOp {
    Add(u8, i8),
    Insert(u8, i8),
    Delete(u8),
    Reserve(u8, u8),
    Release(u8, u8),
    Read(u8),
}

impl SemOp {
    fn to_op(&self) -> Op {
        match *self {
            SemOp::Add(k, d) => Op::Add(Key(k as u64), d as i64),
            SemOp::Insert(k, v) => Op::Insert(Key(k as u64), Value(v as i64)),
            SemOp::Delete(k) => Op::Delete(Key(k as u64)),
            SemOp::Reserve(k, n) => Op::Reserve(Key(k as u64), (n % 3) as u32),
            SemOp::Release(k, n) => Op::Release(Key(k as u64), (n % 3) as u32),
            SemOp::Read(k) => Op::Read(Key(k as u64)),
        }
    }
}

fn sem_op() -> impl Strategy<Value = SemOp> {
    prop_oneof![
        (0u8..5, any::<i8>()).prop_map(|(k, d)| SemOp::Add(k, d)),
        (5u8..8, any::<i8>()).prop_map(|(k, v)| SemOp::Insert(k, v)),
        (0u8..8).prop_map(SemOp::Delete),
        (0u8..5, 0u8..3).prop_map(|(k, n)| SemOp::Reserve(k, n)),
        (0u8..5, 0u8..3).prop_map(|(k, n)| SemOp::Release(k, n)),
        (0u8..5).prop_map(SemOp::Read),
    ]
}

fn seeded_store() -> Store {
    let mut s = Store::new();
    for k in 0..5u64 {
        s.load(Key(k), Value(10));
    }
    s
}

fn snapshot(s: &Store) -> BTreeMap<u64, i64> {
    s.iter().map(|(k, v)| (k.0, v.0)).collect()
}

/// Run the ops as a forward subtransaction; failed ops are skipped (the
/// engine would abort instead, but for round-trip purposes a skipped op just
/// doesn't enter the commit record).
fn run_forward(store: &mut Store, ops: &[SemOp]) -> o2pc_storage::CommitRecord {
    let e = ExecId::Sub(GlobalTxnId(1));
    for op in ops {
        let _ = store.apply(e, op.to_op());
    }
    store.commit(e)
}

fn run_compensation(store: &mut Store, model: CompensationModel, rec: &o2pc_storage::CommitRecord) {
    let plan = plan_compensation(model, rec);
    let e = ExecId::CompSub(GlobalTxnId(1));
    for op in &plan.ops {
        // Persistence of compensation: inapplicable ops are skipped, exactly
        // as the site kernel does.
        let _ = store.apply(e, *op);
    }
    store.commit(e);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Uninterleaved restricted-model compensation is an exact inverse.
    #[test]
    fn restricted_roundtrip_exact(ops in prop::collection::vec(sem_op(), 0..25)) {
        let mut store = seeded_store();
        let before = snapshot(&store);
        let rec = run_forward(&mut store, &ops);
        run_compensation(&mut store, CompensationModel::Restricted, &rec);
        prop_assert_eq!(snapshot(&store), before);
    }

    /// Uninterleaved generic-model compensation is an exact inverse too.
    #[test]
    fn generic_roundtrip_exact(ops in prop::collection::vec(sem_op(), 0..25)) {
        let mut store = seeded_store();
        let before = snapshot(&store);
        let rec = run_forward(&mut store, &ops);
        run_compensation(&mut store, CompensationModel::Generic, &rec);
        prop_assert_eq!(snapshot(&store), before);
    }

    /// With an interleaved independent delta on a key the forward
    /// transaction only `Add`ed to, restricted compensation preserves the
    /// delta exactly.
    #[test]
    fn restricted_preserves_interleaved_deltas(
        deltas in prop::collection::vec((0u8..5, -20i8..20), 1..10),
        bump in 1i64..50,
    ) {
        let mut store = seeded_store();
        let ops: Vec<SemOp> = deltas.iter().map(|&(k, d)| SemOp::Add(k, d)).collect();
        let rec = run_forward(&mut store, &ops);
        // Interleaved independent transaction bumps key 0.
        let other = ExecId::Sub(GlobalTxnId(9));
        store.apply(other, Op::Add(Key(0), bump)).unwrap();
        store.commit(other);
        let with_bump = snapshot(&store);
        run_compensation(&mut store, CompensationModel::Restricted, &rec);
        // Compensation removed exactly the forward deltas: final = initial + bump.
        let mut expected = BTreeMap::new();
        for k in 0..5u64 {
            expected.insert(k, 10 + if k == 0 { bump } else { 0 });
        }
        prop_assert_eq!(snapshot(&store), expected);
        // And the bump itself was visible before compensation.
        prop_assert!(with_bump[&0] >= 10 + bump - 20 * 10);
    }
}
