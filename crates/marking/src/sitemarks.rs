//! The per-site marking set `sitemarks.k`.
//!
//! For the P1 implementation the locally-committed marking is redundant (the
//! protocol treats locally-committed and unmarked sites alike), but P2 and
//! the full Figure 2 semantics need both kinds, so [`SiteMarks`] stores the
//! complete [`MarkState`] per transaction; the P1 view (`undone_set`) is a
//! projection.
//!
//! The marking set is itself a shared data structure at the site; the paper
//! recommends protecting it with the local concurrency control (and
//! discusses the deadlocks this can cause, §6.2). In this implementation
//! the engine serializes marking accesses with subtransaction scheduling on
//! the simulator's single timeline, and the *late revalidation* compromise
//! the paper suggests (check first, revalidate as the subtransaction's last
//! action) is exercised by the engine's R1 handling.

use crate::state::{MarkEvent, MarkState};
use o2pc_common::{CommonError, GlobalTxnId};
use std::collections::BTreeMap;

/// Markings of one site with respect to all global transactions.
#[derive(Clone, Debug, Default)]
pub struct SiteMarks {
    marks: BTreeMap<GlobalTxnId, MarkState>,
}

impl SiteMarks {
    /// New, fully unmarked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current marking with respect to `txn`.
    pub fn mark_of(&self, txn: GlobalTxnId) -> MarkState {
        self.marks.get(&txn).copied().unwrap_or_default()
    }

    /// Apply a marking event for `txn` (Figure 2).
    pub fn apply(&mut self, txn: GlobalTxnId, ev: MarkEvent) -> Result<MarkState, CommonError> {
        let next = self.mark_of(txn).on_event(ev)?;
        if next == MarkState::Unmarked {
            self.marks.remove(&txn);
        } else {
            self.marks.insert(txn, next);
        }
        Ok(next)
    }

    /// Rule R2: executed as the last operation of `CT_ik` — the site becomes
    /// undone with respect to `T_i`. (For a site that voted abort, the
    /// roll-back is the compensation and the same rule applies at roll-back
    /// completion.) Idempotent by construction: the marking may already be
    /// `Undone` if the vote-abort path set it.
    pub fn mark_undone(&mut self, txn: GlobalTxnId) {
        self.marks.insert(txn, MarkState::Undone);
    }

    /// Rule R3: UDUM1 detected — forget the undone marking.
    pub fn unmark(&mut self, txn: GlobalTxnId) {
        self.marks.remove(&txn);
    }

    /// The set of transactions this site is *undone* with respect to
    /// (`sitemarks.k` of the paper's P1 implementation).
    pub fn undone_set(&self) -> Vec<GlobalTxnId> {
        self.marks
            .iter()
            .filter(|(_, &m)| m == MarkState::Undone)
            .map(|(&t, _)| t)
            .collect()
    }

    /// The set of transactions this site is *locally committed* with respect
    /// to (needed by P2).
    pub fn locally_committed_set(&self) -> Vec<GlobalTxnId> {
        self.marks
            .iter()
            .filter(|(_, &m)| m == MarkState::LocallyCommitted)
            .map(|(&t, _)| t)
            .collect()
    }

    /// All current markings.
    pub fn iter(&self) -> impl Iterator<Item = (GlobalTxnId, MarkState)> + '_ {
        self.marks.iter().map(|(&t, &m)| (t, m))
    }

    /// Number of marked transactions.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    #[test]
    fn vote_and_decision_flow() {
        let mut sm = SiteMarks::new();
        assert_eq!(sm.mark_of(g(1)), MarkState::Unmarked);
        sm.apply(g(1), MarkEvent::VoteCommit).unwrap();
        assert_eq!(sm.mark_of(g(1)), MarkState::LocallyCommitted);
        assert_eq!(sm.locally_committed_set(), vec![g(1)]);
        sm.apply(g(1), MarkEvent::DecisionCommit).unwrap();
        assert_eq!(sm.mark_of(g(1)), MarkState::Unmarked);
        assert!(sm.is_empty(), "unmarked entries are reclaimed");
    }

    #[test]
    fn abort_flow_and_projection() {
        let mut sm = SiteMarks::new();
        sm.apply(g(1), MarkEvent::VoteCommit).unwrap();
        sm.apply(g(1), MarkEvent::DecisionAbort).unwrap();
        sm.apply(g(2), MarkEvent::VoteAbort).unwrap();
        assert_eq!(sm.undone_set(), vec![g(1), g(2)]);
        assert!(sm.locally_committed_set().is_empty());
        sm.unmark(g(1));
        assert_eq!(sm.undone_set(), vec![g(2)]);
    }

    #[test]
    fn r2_is_idempotent_over_vote_abort() {
        let mut sm = SiteMarks::new();
        sm.apply(g(3), MarkEvent::VoteAbort).unwrap();
        sm.mark_undone(g(3)); // roll-back completion re-affirms
        assert_eq!(sm.mark_of(g(3)), MarkState::Undone);
        assert_eq!(sm.len(), 1);
    }

    #[test]
    fn illegal_event_surfaces_error() {
        let mut sm = SiteMarks::new();
        assert!(sm.apply(g(1), MarkEvent::Udum).is_err());
        sm.apply(g(1), MarkEvent::VoteCommit).unwrap();
        assert!(sm.apply(g(1), MarkEvent::VoteCommit).is_err());
        // State unchanged on error.
        assert_eq!(sm.mark_of(g(1)), MarkState::LocallyCommitted);
    }

    #[test]
    fn independent_transactions() {
        let mut sm = SiteMarks::new();
        sm.apply(g(1), MarkEvent::VoteCommit).unwrap();
        sm.apply(g(2), MarkEvent::VoteAbort).unwrap();
        let marks: Vec<_> = sm.iter().collect();
        assert_eq!(
            marks,
            vec![
                (g(1), MarkState::LocallyCommitted),
                (g(2), MarkState::Undone)
            ]
        );
    }
}
