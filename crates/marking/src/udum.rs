//! Detection of condition UDUM1 (§6.2).
//!
//! A site that is undone with respect to `T_i` may forget that marking only
//! when no transaction that accessed a locally-committed-wrt-`T_i` site can
//! still reach it (UDUM0). Detecting UDUM0 directly would need extra
//! messages; the paper instead detects the stronger, locally-observable
//! condition:
//!
//! > *UDUM1*: for each site in which `T_i` executes, there is a transaction
//! > that has also executed at that site while that site was undone with
//! > respect to `T_i`.
//!
//! By Lemma 4, UDUM1 implies UDUM0: because global transactions obey 2PL, a
//! transaction that has executed at every `T_i` site *after* the undo
//! "fences" the marking — any `T_j` that had accessed a locally-committed
//! site would have had to order before those fences everywhere.
//!
//! The tracker's inputs (the execution-site set of `T_i`, and which sites
//! saw a post-undo access) travel with existing messages in a real
//! deployment; the engine maintains the tracker centrally and the message
//! accounting of experiment E6 confirms no extra message rounds exist.

use o2pc_common::{GlobalTxnId, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks progress toward UDUM1 for every aborted global transaction.
#[derive(Clone, Debug, Default)]
pub struct UdumTracker {
    /// For each aborted transaction: its execution sites.
    exec_sites: BTreeMap<GlobalTxnId, BTreeSet<SiteId>>,
    /// For each aborted transaction: sites where some transaction executed
    /// while the site was undone with respect to it.
    fenced: BTreeMap<GlobalTxnId, BTreeSet<SiteId>>,
    /// Transactions whose UDUM1 already fired.
    fired: BTreeSet<GlobalTxnId>,
}

impl UdumTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the execution-site set of an aborted transaction (known to
    /// its coordinator; piggy-backed on the DECISION messages).
    pub fn register_aborted(&mut self, txn: GlobalTxnId, sites: impl IntoIterator<Item = SiteId>) {
        self.exec_sites.entry(txn).or_default().extend(sites);
    }

    /// Record that some transaction executed at `site` while `site` was
    /// undone with respect to `txn`. Returns `true` if this observation
    /// completes UDUM1 (rule R3 should now unmark `txn` everywhere).
    pub fn observe_access(&mut self, txn: GlobalTxnId, site: SiteId) -> bool {
        if self.fired.contains(&txn) {
            return false;
        }
        let Some(exec) = self.exec_sites.get(&txn) else {
            return false;
        };
        if !exec.contains(&site) {
            return false;
        }
        let fenced = self.fenced.entry(txn).or_default();
        fenced.insert(site);
        if fenced.len() == exec.len() {
            self.fired.insert(txn);
            true
        } else {
            false
        }
    }

    /// Has UDUM1 fired for `txn`?
    pub fn has_fired(&self, txn: GlobalTxnId) -> bool {
        self.fired.contains(&txn)
    }

    /// Sites of `txn` still missing a post-undo access.
    pub fn missing_sites(&self, txn: GlobalTxnId) -> Vec<SiteId> {
        let Some(exec) = self.exec_sites.get(&txn) else {
            return Vec::new();
        };
        let fenced = self.fenced.get(&txn);
        exec.iter()
            .filter(|s| fenced.is_none_or(|f| !f.contains(s)))
            .copied()
            .collect()
    }

    /// Drop all bookkeeping for `txn` (after R3 completed everywhere).
    pub fn forget(&mut self, txn: GlobalTxnId) {
        self.exec_sites.remove(&txn);
        self.fenced.remove(&txn);
        // `fired` retained so late observations stay no-ops.
    }

    /// Number of transactions still being tracked.
    pub fn tracked(&self) -> usize {
        self.exec_sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn fires_when_all_sites_fenced() {
        let mut u = UdumTracker::new();
        u.register_aborted(g(1), [s(0), s(1), s(2)]);
        assert!(!u.observe_access(g(1), s(0)));
        assert!(!u.observe_access(g(1), s(1)));
        assert_eq!(u.missing_sites(g(1)), vec![s(2)]);
        assert!(u.observe_access(g(1), s(2)), "third site completes UDUM1");
        assert!(u.has_fired(g(1)));
    }

    #[test]
    fn repeated_observations_do_not_double_count() {
        let mut u = UdumTracker::new();
        u.register_aborted(g(1), [s(0), s(1)]);
        assert!(!u.observe_access(g(1), s(0)));
        assert!(!u.observe_access(g(1), s(0)));
        assert!(!u.has_fired(g(1)));
    }

    #[test]
    fn observations_at_foreign_sites_ignored() {
        let mut u = UdumTracker::new();
        u.register_aborted(g(1), [s(0)]);
        assert!(
            !u.observe_access(g(1), s(9)),
            "s9 is not an execution site of T1"
        );
        assert!(u.observe_access(g(1), s(0)));
    }

    #[test]
    fn unknown_txn_ignored() {
        let mut u = UdumTracker::new();
        assert!(!u.observe_access(g(7), s(0)));
        assert!(!u.has_fired(g(7)));
        assert!(u.missing_sites(g(7)).is_empty());
    }

    #[test]
    fn fires_only_once_and_forget_cleans_up() {
        let mut u = UdumTracker::new();
        u.register_aborted(g(1), [s(0)]);
        assert!(u.observe_access(g(1), s(0)));
        assert!(!u.observe_access(g(1), s(0)), "already fired");
        assert_eq!(u.tracked(), 1);
        u.forget(g(1));
        assert_eq!(u.tracked(), 0);
        assert!(u.has_fired(g(1)), "fired flag survives forget");
    }

    #[test]
    fn single_site_transaction_fires_immediately() {
        let mut u = UdumTracker::new();
        u.register_aborted(g(2), [s(3)]);
        assert!(u.observe_access(g(2), s(3)));
    }
}
