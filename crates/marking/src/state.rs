//! The Figure 2 marking state machine.
//!
//! With respect to one global transaction, a site moves between three
//! markings. Every transition is triggered either by a local event or by a
//! message that is already part of the 2PC protocol — the marking scheme
//! costs no extra messages.
//!
//! ```text
//!                 vote commit                decision: commit
//!   unmarked ────────────────► locally-committed ────────► unmarked
//!      │                              │
//!      │ vote abort                   │ decision: abort
//!      ▼                              ▼
//!    undone ◄─────────────────────────┘
//!      │
//!      │ UDUM (safe forgetting)
//!      ▼
//!   unmarked
//! ```

use o2pc_common::CommonError;
use std::fmt;

/// The marking of a site with respect to one global transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, PartialOrd, Ord)]
pub enum MarkState {
    /// No marking (initial state; also the terminal state after commit or
    /// after the undone marking is safely forgotten).
    #[default]
    Unmarked,
    /// The site voted to commit and (under O2PC) released the locks.
    LocallyCommitted,
    /// The site's subtransaction was rolled back / compensated.
    Undone,
}

/// Events driving the marking transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkEvent {
    /// The site votes to commit the transaction (response to VOTE-REQ).
    VoteCommit,
    /// The site votes to abort (the subtransaction is rolled back locally).
    VoteAbort,
    /// The coordinator's decision arrives: commit.
    DecisionCommit,
    /// The coordinator's decision arrives: abort (a locally-committed site
    /// initiates compensation and becomes undone once `CT_ik` completes).
    DecisionAbort,
    /// Condition UDUM1 detected: the undone marking may be forgotten.
    Udum,
}

impl MarkState {
    /// Apply one event, returning the next state, or an error for
    /// transitions Figure 2 does not contain.
    pub fn on_event(self, ev: MarkEvent) -> Result<MarkState, CommonError> {
        use MarkEvent::*;
        use MarkState::*;
        match (self, ev) {
            (Unmarked, VoteCommit) => Ok(LocallyCommitted),
            (Unmarked, VoteAbort) => Ok(Undone),
            (LocallyCommitted, DecisionCommit) => Ok(Unmarked),
            (LocallyCommitted, DecisionAbort) => Ok(Undone),
            // A site that voted abort learns the (inevitable) abort
            // decision: it stays undone.
            (Undone, DecisionAbort) => Ok(Undone),
            (Undone, Udum) => Ok(Unmarked),
            (state, ev) => Err(CommonError::IllegalTransition {
                exec: o2pc_common::ExecId::Sub(o2pc_common::GlobalTxnId(0)),
                attempted: illegal_name(state, ev),
            }),
        }
    }

    /// Is the site marked (in either marked state)?
    pub fn is_marked(self) -> bool {
        self != MarkState::Unmarked
    }
}

fn illegal_name(state: MarkState, ev: MarkEvent) -> &'static str {
    match (state, ev) {
        (MarkState::Unmarked, MarkEvent::DecisionCommit) => "decision-commit while unmarked",
        (MarkState::Unmarked, MarkEvent::DecisionAbort) => "decision-abort while unmarked",
        (MarkState::Unmarked, MarkEvent::Udum) => "udum while unmarked",
        (MarkState::LocallyCommitted, MarkEvent::VoteCommit) => "double vote-commit",
        (MarkState::LocallyCommitted, MarkEvent::VoteAbort) => "vote-abort after vote-commit",
        (MarkState::LocallyCommitted, MarkEvent::Udum) => "udum while locally-committed",
        (MarkState::Undone, MarkEvent::VoteCommit) => "vote-commit while undone",
        (MarkState::Undone, MarkEvent::VoteAbort) => "double vote-abort",
        (MarkState::Undone, MarkEvent::DecisionCommit) => "decision-commit while undone",
        _ => "unexpected transition",
    }
}

impl fmt::Display for MarkState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkState::Unmarked => write!(f, "unmarked"),
            MarkState::LocallyCommitted => write!(f, "locally-committed"),
            MarkState::Undone => write!(f, "undone"),
        }
    }
}

/// Enumerate the full transition table (used by the F2 figure binary).
pub fn transition_table() -> Vec<(MarkState, MarkEvent, Result<MarkState, &'static str>)> {
    use MarkEvent::*;
    use MarkState::*;
    let states = [Unmarked, LocallyCommitted, Undone];
    let events = [VoteCommit, VoteAbort, DecisionCommit, DecisionAbort, Udum];
    let mut table = Vec::new();
    for &s in &states {
        for &e in &events {
            let r = s.on_event(e).map_err(|_| illegal_name(s, e));
            table.push((s, e, r));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use MarkEvent::*;
    use MarkState::*;

    #[test]
    fn commit_path() {
        let s = Unmarked.on_event(VoteCommit).unwrap();
        assert_eq!(s, LocallyCommitted);
        assert!(s.is_marked());
        assert_eq!(s.on_event(DecisionCommit).unwrap(), Unmarked);
    }

    #[test]
    fn abort_after_local_commit_path() {
        let s = Unmarked.on_event(VoteCommit).unwrap();
        let s = s.on_event(DecisionAbort).unwrap();
        assert_eq!(s, Undone);
        assert_eq!(s.on_event(Udum).unwrap(), Unmarked);
    }

    #[test]
    fn vote_abort_path() {
        let s = Unmarked.on_event(VoteAbort).unwrap();
        assert_eq!(s, Undone);
        // The abort decision is redundant for a site that voted no.
        assert_eq!(s.on_event(DecisionAbort).unwrap(), Undone);
        assert_eq!(s.on_event(Udum).unwrap(), Unmarked);
    }

    #[test]
    fn illegal_transitions_rejected() {
        assert!(Unmarked.on_event(DecisionCommit).is_err());
        assert!(Unmarked.on_event(Udum).is_err());
        assert!(LocallyCommitted.on_event(VoteCommit).is_err());
        assert!(LocallyCommitted.on_event(Udum).is_err());
        assert!(Undone.on_event(DecisionCommit).is_err());
        assert!(Undone.on_event(VoteCommit).is_err());
    }

    #[test]
    fn table_is_exhaustive() {
        let table = transition_table();
        assert_eq!(table.len(), 15);
        let legal = table.iter().filter(|(_, _, r)| r.is_ok()).count();
        assert_eq!(legal, 6, "Figure 2 has exactly six transitions");
    }

    #[test]
    fn display() {
        assert_eq!(Unmarked.to_string(), "unmarked");
        assert_eq!(LocallyCommitted.to_string(), "locally-committed");
        assert_eq!(Undone.to_string(), "undone");
    }
}
