//! The per-transaction accumulator `transmarks.j` and the R1 compatibility
//! check for protocols P1, P2 and the "simple" §6.2 variant.
//!
//! P1 restricts the sites a global transaction `T_j` may access: for every
//! `T_i` that marks any of them, either **all** of `T_j`'s sites are undone
//! with respect to `T_i`, or **all** are locally-committed-or-unmarked.
//! (P2 is the dual with locally-committed in the strict role.) The check is
//! evaluated incrementally, site by site, as subtransactions are spawned —
//! exactly the paper's R1 — using only the marks each site held *at access
//! time*, which is what `transmarks.j` accumulates.

use crate::sitemarks::SiteMarks;
use crate::state::MarkState;
use o2pc_common::GlobalTxnId;
use std::collections::BTreeMap;

/// Which complementary protocol governs subtransaction admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MarkingProtocol {
    /// No restriction (bare O2PC — regular cycles possible).
    #[default]
    None,
    /// P1: enforces stratification property S1.
    P1,
    /// P2: enforces stratification property S2 (dual of P1).
    P2,
    /// The simple protocol sketched at the end of §6.2: all sites must be
    /// undone with respect to the same transactions and locally-committed
    /// with respect to none. (Simplest, least concurrency.)
    Simple,
}

/// Why a subtransaction was rejected by R1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Incompatibility {
    /// The transaction whose markings clash.
    pub with: GlobalTxnId,
    /// Mark at the site being entered.
    pub site_mark: MarkState,
    /// Whether the clash can resolve by waiting (e.g. the new site's
    /// compensation has not completed yet, or its mark may be forgotten via
    /// UDUM) or only by aborting the global transaction.
    pub retryable: bool,
}

/// Per-transaction accumulated marking observations (`transmarks.j`).
#[derive(Clone, Debug, Default)]
pub struct TransMarks {
    /// Number of sites visited so far.
    visits: u32,
    /// For each `T_i`: how many visited sites were undone / locally
    /// committed with respect to it at visit time.
    undone: BTreeMap<GlobalTxnId, u32>,
    lc: BTreeMap<GlobalTxnId, u32>,
}

impl TransMarks {
    /// Fresh accumulator for a new global transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sites visited so far.
    pub fn visits(&self) -> u32 {
        self.visits
    }

    /// The `T_i` set this transaction has seen undone marks for (the
    /// paper's `transmarks.j` under the simplified P1 implementation).
    pub fn undone_seen(&self) -> Vec<GlobalTxnId> {
        self.undone.keys().copied().collect()
    }

    /// R1: may `T_j` (whose observations are `self`) spawn a subtransaction
    /// at a site whose current marks are `site`? On success the observations
    /// are absorbed (`transmarks.j ← transmarks.j ∪ sitemarks.k`).
    pub fn check_and_absorb(
        &mut self,
        protocol: MarkingProtocol,
        site: &SiteMarks,
    ) -> Result<(), Incompatibility> {
        self.check(protocol, site)?;
        self.absorb(site);
        Ok(())
    }

    /// The compatibility check alone (used for the paper's early-check /
    /// late-revalidate compromise: check first, revalidate as the
    /// subtransaction's last action).
    pub fn check(
        &self,
        protocol: MarkingProtocol,
        site: &SiteMarks,
    ) -> Result<(), Incompatibility> {
        match protocol {
            MarkingProtocol::None => Ok(()),
            MarkingProtocol::P1 => self.check_p1(site),
            MarkingProtocol::P2 => self.check_p2(site),
            MarkingProtocol::Simple => self.check_simple(site),
        }
    }

    /// Absorb a site's marks after a successful check.
    pub fn absorb(&mut self, site: &SiteMarks) {
        self.visits += 1;
        for (txn, mark) in site.iter() {
            match mark {
                MarkState::Undone => *self.undone.entry(txn).or_insert(0) += 1,
                MarkState::LocallyCommitted => *self.lc.entry(txn).or_insert(0) += 1,
                MarkState::Unmarked => {}
            }
        }
    }

    /// P1: for each `T_i`, "undone with respect to `T_i`" must hold at all
    /// of `T_j`'s sites or at none.
    fn check_p1(&self, site: &SiteMarks) -> Result<(), Incompatibility> {
        // (a) Previously seen undone marks must hold at the new site too.
        for (&txn, &cnt) in &self.undone {
            debug_assert!(cnt <= self.visits);
            if cnt == self.visits && self.visits > 0 {
                // All previous sites were undone wrt txn: the new site must be as well.
                if site.mark_of(txn) != MarkState::Undone {
                    return Err(Incompatibility {
                        with: txn,
                        site_mark: site.mark_of(txn),
                        // The new site may yet become undone (its CT_ik may
                        // still be running) — retryable in principle; the
                        // engine decides based on whether T_i executed here.
                        retryable: true,
                    });
                }
            } else {
                // Mixed already recorded: tolerated only because the marks
                // were partially forgotten (UDUM) between visits; by Lemma 4
                // that is safe. Nothing to enforce against the new site.
            }
        }
        // (b) If the new site is undone wrt some T_i, every previous site
        // must have been undone wrt T_i at visit time.
        for txn in site.undone_set() {
            let seen = self.undone.get(&txn).copied().unwrap_or(0);
            if seen < self.visits {
                return Err(Incompatibility {
                    with: txn,
                    site_mark: MarkState::Undone,
                    // "only aborting the corresponding global transaction
                    // can resolve the situation" — unless this site's mark
                    // is forgotten via UDUM first, so the engine may retry a
                    // bounded number of times before aborting.
                    retryable: true,
                });
            }
        }
        Ok(())
    }

    /// P2 (dual): "locally-committed with respect to `T_i`" must hold at all
    /// of `T_j`'s sites or at none.
    fn check_p2(&self, site: &SiteMarks) -> Result<(), Incompatibility> {
        for (&txn, &cnt) in &self.lc {
            if cnt == self.visits
                && self.visits > 0
                && site.mark_of(txn) != MarkState::LocallyCommitted
            {
                return Err(Incompatibility {
                    with: txn,
                    site_mark: site.mark_of(txn),
                    retryable: true,
                });
            }
        }
        for txn in site.locally_committed_set() {
            let seen = self.lc.get(&txn).copied().unwrap_or(0);
            if seen < self.visits {
                return Err(Incompatibility {
                    with: txn,
                    site_mark: MarkState::LocallyCommitted,
                    retryable: true,
                });
            }
        }
        Ok(())
    }

    /// Simple protocol: all sites undone with respect to the same
    /// transactions, locally-committed with respect to none.
    fn check_simple(&self, site: &SiteMarks) -> Result<(), Incompatibility> {
        if let Some(&txn) = site.locally_committed_set().first() {
            return Err(Incompatibility {
                with: txn,
                site_mark: MarkState::LocallyCommitted,
                retryable: true,
            });
        }
        // Exact undone-set equality with everything seen so far.
        self.check_p1(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MarkEvent;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }

    fn undone_site(txns: &[u64]) -> SiteMarks {
        let mut sm = SiteMarks::new();
        for &t in txns {
            sm.apply(g(t), MarkEvent::VoteAbort).unwrap();
        }
        sm
    }

    fn lc_site(txns: &[u64]) -> SiteMarks {
        let mut sm = SiteMarks::new();
        for &t in txns {
            sm.apply(g(t), MarkEvent::VoteCommit).unwrap();
        }
        sm
    }

    #[test]
    fn p1_accepts_uniform_unmarked() {
        let mut tm = TransMarks::new();
        for _ in 0..3 {
            tm.check_and_absorb(MarkingProtocol::P1, &SiteMarks::new())
                .unwrap();
        }
        assert_eq!(tm.visits(), 3);
    }

    #[test]
    fn p1_accepts_uniform_undone() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &undone_site(&[5]))
            .unwrap();
        tm.check_and_absorb(MarkingProtocol::P1, &undone_site(&[5]))
            .unwrap();
        assert_eq!(tm.undone_seen(), vec![g(5)]);
    }

    #[test]
    fn p1_rejects_undone_then_unmarked() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &undone_site(&[5]))
            .unwrap();
        let err = tm
            .check(MarkingProtocol::P1, &SiteMarks::new())
            .unwrap_err();
        assert_eq!(err.with, g(5));
        assert_eq!(err.site_mark, MarkState::Unmarked);
    }

    #[test]
    fn p1_rejects_unmarked_then_undone() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &SiteMarks::new())
            .unwrap();
        let err = tm
            .check(MarkingProtocol::P1, &undone_site(&[5]))
            .unwrap_err();
        assert_eq!(err.with, g(5));
        assert_eq!(err.site_mark, MarkState::Undone);
    }

    #[test]
    fn p1_allows_locally_committed_and_unmarked_mix() {
        // The P1 simplification: LC and unmarked are interchangeable.
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &lc_site(&[5]))
            .unwrap();
        tm.check_and_absorb(MarkingProtocol::P1, &SiteMarks::new())
            .unwrap();
        tm.check_and_absorb(MarkingProtocol::P1, &lc_site(&[5, 7]))
            .unwrap();
    }

    #[test]
    fn p1_rejects_lc_then_undone_for_same_txn() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P1, &lc_site(&[5]))
            .unwrap();
        let err = tm
            .check(MarkingProtocol::P1, &undone_site(&[5]))
            .unwrap_err();
        assert_eq!(err.with, g(5));
    }

    #[test]
    fn p2_duality() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P2, &lc_site(&[5]))
            .unwrap();
        // All sites must be LC wrt 5 now.
        assert!(tm.check(MarkingProtocol::P2, &SiteMarks::new()).is_err());
        assert!(tm.check(MarkingProtocol::P2, &lc_site(&[5])).is_ok());
        // Undone and unmarked mix freely under P2.
        let mut tm2 = TransMarks::new();
        tm2.check_and_absorb(MarkingProtocol::P2, &undone_site(&[5]))
            .unwrap();
        tm2.check_and_absorb(MarkingProtocol::P2, &SiteMarks::new())
            .unwrap();
    }

    #[test]
    fn p2_rejects_fresh_lc_after_non_lc_visit() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::P2, &SiteMarks::new())
            .unwrap();
        let err = tm.check(MarkingProtocol::P2, &lc_site(&[5])).unwrap_err();
        assert_eq!(err.with, g(5));
        assert_eq!(err.site_mark, MarkState::LocallyCommitted);
    }

    #[test]
    fn simple_protocol_rejects_any_lc() {
        let mut tm = TransMarks::new();
        let err = tm
            .check(MarkingProtocol::Simple, &lc_site(&[5]))
            .unwrap_err();
        assert_eq!(err.with, g(5));
        // Undone uniformity still required.
        tm.check_and_absorb(MarkingProtocol::Simple, &undone_site(&[3]))
            .unwrap();
        assert!(tm
            .check(MarkingProtocol::Simple, &undone_site(&[3]))
            .is_ok());
        assert!(tm
            .check(MarkingProtocol::Simple, &SiteMarks::new())
            .is_err());
    }

    #[test]
    fn no_protocol_accepts_everything() {
        let mut tm = TransMarks::new();
        tm.check_and_absorb(MarkingProtocol::None, &undone_site(&[1]))
            .unwrap();
        tm.check_and_absorb(MarkingProtocol::None, &lc_site(&[1]))
            .unwrap();
        tm.check_and_absorb(MarkingProtocol::None, &SiteMarks::new())
            .unwrap();
    }

    #[test]
    fn check_without_absorb_is_pure() {
        let tm = TransMarks::new();
        let site = undone_site(&[1]);
        assert!(tm.check(MarkingProtocol::P1, &site).is_ok());
        assert_eq!(tm.visits(), 0, "check must not mutate");
    }
}
