//! # o2pc-marking
//!
//! The site-marking protocols of §6 that complement O2PC by enforcing the
//! stratification properties (S1 for P1, S2 for P2), preventing regular
//! cycles without any messages beyond the standard 2PC exchange.
//!
//! * [`state`] — the Figure 2 marking state machine: with respect to each
//!   global transaction a site is *unmarked*, *locally-committed*, or
//!   *undone*; transitions are triggered only by local events and by
//!   messages already part of 2PC.
//! * [`sitemarks`] — the per-site `sitemarks.k` set (rule R2 adds `T_i` as
//!   the last operation of `CT_ik`; rule R3 removes it when UDUM1 fires).
//! * [`transmarks`] — the per-transaction `transmarks.j` accumulator and the
//!   `compatible()` check of rule R1, for P1, its dual P2, and the "simple"
//!   protocol sketched at the end of §6.2.
//! * [`udum`] — detection of condition UDUM1 ("for each site in which `T_i`
//!   executes, there is a transaction that has also executed at that site
//!   while that site was undone with respect to `T_i`"), which by Lemma 4
//!   implies UDUM0 and licenses the *undone → unmarked* transition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sitemarks;
pub mod state;
pub mod transmarks;
pub mod udum;

pub use sitemarks::SiteMarks;
pub use state::{MarkEvent, MarkState};
pub use transmarks::{Incompatibility, MarkingProtocol, TransMarks};
pub use udum::UdumTracker;
