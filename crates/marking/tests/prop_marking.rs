//! Property tests for the marking machinery.
//!
//! The P1 admission rule has a crisp declarative spec: considering the marks
//! each site held *at visit time*, "undone with respect to `T_i`" must hold
//! at **all** visited sites or at **none**. The incremental
//! `check_and_absorb` implementation is validated against that spec on
//! random visit sequences; P2 dually for locally-committed.

use o2pc_common::GlobalTxnId;
use o2pc_marking::{MarkEvent, MarkState, MarkingProtocol, SiteMarks, TransMarks};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random site-marking snapshot over 3 transactions.
fn site_strategy() -> impl Strategy<Value = SiteMarks> {
    prop::collection::vec(0u8..3, 3).prop_map(|states| {
        let mut sm = SiteMarks::new();
        for (i, &s) in states.iter().enumerate() {
            let g = GlobalTxnId(i as u64);
            match s {
                1 => {
                    sm.apply(g, MarkEvent::VoteCommit).unwrap();
                }
                2 => {
                    sm.apply(g, MarkEvent::VoteAbort).unwrap();
                }
                _ => {}
            }
        }
        sm
    })
}

/// Declarative P1 spec on the full visit sequence.
fn spec_accepts_p1(visits: &[SiteMarks]) -> bool {
    for txn in 0..3u64 {
        let g = GlobalTxnId(txn);
        let undone: Vec<bool> = visits
            .iter()
            .map(|s| s.mark_of(g) == MarkState::Undone)
            .collect();
        let any = undone.iter().any(|&b| b);
        let all = undone.iter().all(|&b| b);
        if any && !all {
            return false;
        }
    }
    true
}

/// Declarative P2 spec.
fn spec_accepts_p2(visits: &[SiteMarks]) -> bool {
    for txn in 0..3u64 {
        let g = GlobalTxnId(txn);
        let lc: Vec<bool> = visits
            .iter()
            .map(|s| s.mark_of(g) == MarkState::LocallyCommitted)
            .collect();
        let any = lc.iter().any(|&b| b);
        let all = lc.iter().all(|&b| b);
        if any && !all {
            return false;
        }
    }
    true
}

fn incremental_accepts(protocol: MarkingProtocol, visits: &[SiteMarks]) -> bool {
    let mut tm = TransMarks::new();
    for site in visits {
        if tm.check_and_absorb(protocol, site).is_err() {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Incremental R1 under P1 accepts a visit sequence iff the declarative
    /// all-or-none spec accepts it.
    #[test]
    fn p1_matches_declarative_spec(visits in prop::collection::vec(site_strategy(), 1..6)) {
        prop_assert_eq!(
            incremental_accepts(MarkingProtocol::P1, &visits),
            spec_accepts_p1(&visits),
            "visits: {:?}",
            visits.iter().map(|s| s.iter().collect::<Vec<_>>()).collect::<Vec<_>>()
        );
    }

    /// P2 dually.
    #[test]
    fn p2_matches_declarative_spec(visits in prop::collection::vec(site_strategy(), 1..6)) {
        prop_assert_eq!(
            incremental_accepts(MarkingProtocol::P2, &visits),
            spec_accepts_p2(&visits)
        );
    }

    /// The simple protocol is at least as strict as P1 (everything it
    /// accepts, P1 accepts), and rejects any locally-committed mark.
    #[test]
    fn simple_is_stricter_than_p1(visits in prop::collection::vec(site_strategy(), 1..6)) {
        if incremental_accepts(MarkingProtocol::Simple, &visits) {
            prop_assert!(incremental_accepts(MarkingProtocol::P1, &visits));
            for v in &visits {
                prop_assert!(v.locally_committed_set().is_empty());
            }
        }
    }

    /// `MarkingProtocol::None` accepts everything.
    #[test]
    fn none_accepts_everything(visits in prop::collection::vec(site_strategy(), 1..6)) {
        prop_assert!(incremental_accepts(MarkingProtocol::None, &visits));
    }

    /// The marking state machine never reaches an undefined state and the
    /// projections stay consistent under random legal event sequences.
    #[test]
    fn state_machine_projections_consistent(events in prop::collection::vec(0u8..5, 0..20)) {
        let mut sm = SiteMarks::new();
        let g = GlobalTxnId(0);
        let mut model = MarkState::Unmarked;
        for e in events {
            let ev = match e {
                0 => MarkEvent::VoteCommit,
                1 => MarkEvent::VoteAbort,
                2 => MarkEvent::DecisionCommit,
                3 => MarkEvent::DecisionAbort,
                _ => MarkEvent::Udum,
            };
            match sm.apply(g, ev) {
                Ok(next) => {
                    model = model.on_event(ev).expect("sm accepted, model must too");
                    prop_assert_eq!(next, model);
                }
                Err(_) => {
                    prop_assert!(model.on_event(ev).is_err(), "divergent legality for {:?}", ev);
                }
            }
            prop_assert_eq!(sm.mark_of(g), model);
            let undone = sm.undone_set().contains(&g);
            let lc = sm.locally_committed_set().contains(&g);
            prop_assert_eq!(undone, model == MarkState::Undone);
            prop_assert_eq!(lc, model == MarkState::LocallyCommitted);
        }
    }

    /// A `BTreeMap`-free sanity: absorbing N sites records N visits and the
    /// undone counters never exceed the visit count.
    #[test]
    fn absorb_counters_are_bounded(visits in prop::collection::vec(site_strategy(), 1..8)) {
        let mut tm = TransMarks::new();
        for v in &visits {
            tm.absorb(v);
        }
        prop_assert_eq!(tm.visits() as usize, visits.len());
        let counts: BTreeMap<GlobalTxnId, u32> =
            tm.undone_seen().into_iter().map(|g| (g, 0)).collect();
        for (g, _) in counts {
            let actual = visits.iter().filter(|v| v.mark_of(g) == MarkState::Undone).count();
            prop_assert!(actual >= 1);
            prop_assert!(actual <= visits.len());
        }
    }
}
