//! The lock table.

use crate::stats::LockStats;
use o2pc_common::FastHashMap;
use o2pc_common::{AccessMode, ExecId, Key, SimTime};
use std::collections::VecDeque;

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock is held; the caller may proceed.
    Granted,
    /// The request was queued; the caller must park the execution until the
    /// exec shows up in the grant list returned by a release call.
    Waiting,
}

#[derive(Clone, Copy, Debug)]
struct Grant {
    exec: ExecId,
    mode: AccessMode,
    acquired: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct WaitReq {
    exec: ExecId,
    mode: AccessMode,
    enqueued: SimTime,
    /// True when this is an S→X upgrade of an existing shared grant.
    upgrade: bool,
}

#[derive(Clone, Debug, Default)]
struct LockEntry {
    granted: Vec<Grant>,
    queue: VecDeque<WaitReq>,
}

impl LockEntry {
    fn holds(&self, exec: ExecId) -> Option<AccessMode> {
        self.granted.iter().find(|g| g.exec == exec).map(|g| g.mode)
    }

    fn compatible(&self, exec: ExecId, mode: AccessMode) -> bool {
        self.granted
            .iter()
            .all(|g| g.exec == exec || !g.mode.conflicts_with(mode))
    }
}

/// A single-site strict-2PL lock manager.
///
/// Invariants (checked by the property tests):
/// 1. no two grants on the same item conflict,
/// 2. an execution waits on at most one item at a time (executions are
///    sequential programs),
/// 3. FIFO within an item: a queued request is never overtaken by a
///    *conflicting* later request.
#[derive(Clone, Debug, Default)]
pub struct LockManager {
    table: FastHashMap<Key, LockEntry>,
    held: FastHashMap<ExecId, Vec<Key>>,
    waiting: FastHashMap<ExecId, Key>,
    stats: LockStats,
}

impl LockManager {
    /// New empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Mutable access for the protocol layer (deadlock counters).
    pub fn stats_mut(&mut self) -> &mut LockStats {
        &mut self.stats
    }

    /// Keys currently held by an execution.
    pub fn held_keys(&self, exec: ExecId) -> &[Key] {
        self.held.get(&exec).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The key an execution is currently waiting on, if any.
    pub fn waiting_on(&self, exec: ExecId) -> Option<Key> {
        self.waiting.get(&exec).copied()
    }

    /// The mode `exec` holds on `key`, if granted.
    pub fn mode_of(&self, exec: ExecId, key: Key) -> Option<AccessMode> {
        self.table.get(&key).and_then(|e| e.holds(exec))
    }

    /// Request `mode` on `key` for `exec` at virtual time `now`.
    pub fn request(
        &mut self,
        exec: ExecId,
        key: Key,
        mode: AccessMode,
        now: SimTime,
    ) -> RequestOutcome {
        debug_assert!(
            !self.waiting.contains_key(&exec),
            "{exec} requested a lock while already waiting"
        );
        let entry = self.table.entry(key).or_default();

        // Re-entrant cases.
        match entry.holds(exec) {
            Some(AccessMode::Write) => {
                self.stats.immediate_grants.inc();
                return RequestOutcome::Granted;
            }
            Some(AccessMode::Read) if mode == AccessMode::Read => {
                self.stats.immediate_grants.inc();
                return RequestOutcome::Granted;
            }
            Some(AccessMode::Read) => {
                // Upgrade S → X.
                if entry.granted.len() == 1 {
                    entry.granted[0].mode = AccessMode::Write;
                    // Hold time of the X grant is measured from the upgrade.
                    entry.granted[0].acquired = now;
                    self.stats.instant_upgrades.inc();
                    self.stats.immediate_grants.inc();
                    return RequestOutcome::Granted;
                }
                // Queue the upgrade at the front so it beats fresh requests.
                entry.queue.push_front(WaitReq {
                    exec,
                    mode,
                    enqueued: now,
                    upgrade: true,
                });
                self.waiting.insert(exec, key);
                self.stats.queued_requests.inc();
                return RequestOutcome::Waiting;
            }
            None => {}
        }

        // Fresh request: grant only if compatible AND no one queued ahead
        // (prevents starvation of waiting writers).
        if entry.queue.is_empty() && entry.compatible(exec, mode) {
            entry.granted.push(Grant {
                exec,
                mode,
                acquired: now,
            });
            self.held.entry(exec).or_default().push(key);
            self.stats.immediate_grants.inc();
            RequestOutcome::Granted
        } else {
            entry.queue.push_back(WaitReq {
                exec,
                mode,
                enqueued: now,
                upgrade: false,
            });
            self.waiting.insert(exec, key);
            self.stats.queued_requests.inc();
            RequestOutcome::Waiting
        }
    }

    /// Process the wait queue of `key`, granting a maximal FIFO-compatible
    /// prefix. Returns the executions granted now.
    fn process_queue(&mut self, key: Key, now: SimTime) -> Vec<ExecId> {
        let mut woken = Vec::new();
        let Some(entry) = self.table.get_mut(&key) else {
            return woken;
        };
        while let Some(&head) = entry.queue.front() {
            if head.upgrade {
                // Grantable when the upgrader is the sole remaining holder.
                if entry.granted.len() == 1 && entry.granted[0].exec == head.exec {
                    entry.granted[0].mode = AccessMode::Write;
                    entry.granted[0].acquired = now;
                } else if entry.granted.is_empty() {
                    // Holder list emptied (upgrader itself was released/aborted
                    // elsewhere): treat as a fresh exclusive grant.
                    entry.granted.push(Grant {
                        exec: head.exec,
                        mode: AccessMode::Write,
                        acquired: now,
                    });
                    self.held.entry(head.exec).or_default().push(key);
                } else if entry.granted.iter().any(|g| g.exec != head.exec) {
                    break;
                }
            } else {
                if !entry.compatible(head.exec, head.mode) {
                    break;
                }
                entry.granted.push(Grant {
                    exec: head.exec,
                    mode: head.mode,
                    acquired: now,
                });
                self.held.entry(head.exec).or_default().push(key);
            }
            entry.queue.pop_front();
            self.waiting.remove(&head.exec);
            self.stats.record_wait(now - head.enqueued);
            woken.push(head.exec);
        }
        if entry.granted.is_empty() && entry.queue.is_empty() {
            self.table.remove(&key);
        }
        woken
    }

    fn release_grant(&mut self, exec: ExecId, key: Key, now: SimTime) {
        if let Some(entry) = self.table.get_mut(&key) {
            if let Some(pos) = entry.granted.iter().position(|g| g.exec == exec) {
                let g = entry.granted.swap_remove(pos);
                self.stats
                    .record_hold(g.mode == AccessMode::Write, now - g.acquired);
            }
        }
        if let Some(keys) = self.held.get_mut(&exec) {
            keys.retain(|&k| k != key);
            if keys.is_empty() {
                self.held.remove(&exec);
            }
        }
    }

    /// Release **all** locks of `exec` (strict-2PL commit/abort, or the O2PC
    /// early release at the commit vote). Returns executions whose queued
    /// requests became granted.
    pub fn release_all(&mut self, exec: ExecId, now: SimTime) -> Vec<ExecId> {
        let keys = self.held.get(&exec).cloned().unwrap_or_default();
        // Also cancel a pending wait if the exec is aborting while queued;
        // removing a queued writer can itself unblock compatible waiters.
        let mut woken = self.cancel_wait(exec);
        for key in keys {
            self.release_grant(exec, key, now);
            woken.extend(self.process_queue(key, now));
        }
        woken
    }

    /// Release only the *shared* locks of `exec` (the distributed-2PL rule:
    /// read locks may go at VOTE-REQ time, write locks only at the decision).
    pub fn release_read_locks(&mut self, exec: ExecId, now: SimTime) -> Vec<ExecId> {
        let keys: Vec<Key> = self
            .held
            .get(&exec)
            .map(|ks| {
                ks.iter()
                    .copied()
                    .filter(|&k| self.mode_of(exec, k) == Some(AccessMode::Read))
                    .collect()
            })
            .unwrap_or_default();
        let mut woken = Vec::new();
        for key in keys {
            self.release_grant(exec, key, now);
            woken.extend(self.process_queue(key, now));
        }
        woken
    }

    /// Remove `exec`'s queued request, if any (the exec aborted while
    /// waiting, e.g. as a deadlock victim). Other waiters may become
    /// grantable; returns them.
    pub fn cancel_wait(&mut self, exec: ExecId) -> Vec<ExecId> {
        let Some(key) = self.waiting.remove(&exec) else {
            return Vec::new();
        };
        if let Some(entry) = self.table.get_mut(&key) {
            entry.queue.retain(|w| w.exec != exec);
        }
        self.stats.cancelled_waits.inc();
        // Removing a queued X may unblock compatible followers.
        self.process_queue(key, SimTime::ZERO).into_iter().collect()
    }

    /// Edges of the waits-for graph: `(waiter, blocker)` pairs. A waiter is
    /// blocked by every conflicting current holder and by every conflicting
    /// request queued ahead of it.
    pub fn waits_for_edges(&self) -> Vec<(ExecId, ExecId)> {
        let mut edges = Vec::new();
        for (_, entry) in self.table.iter() {
            for (i, w) in entry.queue.iter().enumerate() {
                for g in &entry.granted {
                    if g.exec != w.exec && (g.mode.conflicts_with(w.mode) || w.upgrade) {
                        edges.push((w.exec, g.exec));
                    }
                }
                for ahead in entry.queue.iter().take(i) {
                    if ahead.exec != w.exec && ahead.mode.conflicts_with(w.mode) {
                        edges.push((w.exec, ahead.exec));
                    }
                }
            }
        }
        // The lock table is a HashMap: sort so that callers (deadlock
        // detection, victim selection) behave identically across runs.
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Find one deadlock cycle in the waits-for graph, if any exists.
    /// Returns the execs on the cycle.
    pub fn find_deadlock(&mut self) -> Option<Vec<ExecId>> {
        let edges = self.waits_for_edges();
        if edges.is_empty() {
            return None;
        }
        let mut adj: FastHashMap<ExecId, Vec<ExecId>> = FastHashMap::default();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        // Iterative DFS with colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: FastHashMap<ExecId, Colour> = FastHashMap::default();
        let mut nodes: Vec<ExecId> = adj.keys().copied().collect();
        nodes.sort_unstable();
        for &start in &nodes {
            if colour.get(&start).copied().unwrap_or(Colour::White) != Colour::White {
                continue;
            }
            let mut stack: Vec<(ExecId, usize)> = vec![(start, 0)];
            let mut path: Vec<ExecId> = vec![start];
            colour.insert(start, Colour::Grey);
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let succs = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
                if *next < succs.len() {
                    let succ = succs[*next];
                    *next += 1;
                    match colour.get(&succ).copied().unwrap_or(Colour::White) {
                        Colour::Grey => {
                            // Found a cycle: the path suffix from succ.
                            let pos = path.iter().position(|&e| e == succ).unwrap();
                            self.stats.deadlocks_detected.inc();
                            return Some(path[pos..].to_vec());
                        }
                        Colour::White => {
                            colour.insert(succ, Colour::Grey);
                            stack.push((succ, 0));
                            path.push(succ);
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour.insert(node, Colour::Black);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// All executions currently holding at least one lock.
    pub fn holders(&self) -> Vec<ExecId> {
        let mut v: Vec<ExecId> = self.held.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total number of grants outstanding (tests/audits).
    pub fn grant_count(&self) -> usize {
        self.table.values().map(|e| e.granted.len()).sum()
    }

    /// Debug/property-test helper: verify structural invariants.
    pub fn check_invariants(&self) {
        for (key, entry) in &self.table {
            // 1: no conflicting co-grants.
            for (i, a) in entry.granted.iter().enumerate() {
                for b in entry.granted.iter().skip(i + 1) {
                    assert!(
                        !a.mode.conflicts_with(b.mode) || a.exec == b.exec,
                        "conflicting grants on {key}: {:?} vs {:?}",
                        a,
                        b
                    );
                }
            }
            // held map consistent with grants.
            for g in &entry.granted {
                assert!(
                    self.held.get(&g.exec).is_some_and(|ks| ks.contains(key)),
                    "grant on {key} missing from held map of {}",
                    g.exec
                );
            }
            // waiting map consistent with queues.
            for w in &entry.queue {
                assert_eq!(
                    self.waiting.get(&w.exec),
                    Some(key),
                    "waiting map out of sync"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::GlobalTxnId;

    fn e(i: u64) -> ExecId {
        ExecId::Sub(GlobalTxnId(i))
    }

    const T0: SimTime = SimTime(0);

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Read, T0),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(e(2), Key(1), AccessMode::Read, T0),
            RequestOutcome::Granted
        );
        assert_eq!(lm.grant_count(), 2);
        lm.check_invariants();
    }

    #[test]
    fn exclusive_blocks_and_fifo_wakeup() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Write, T0),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(e(2), Key(1), AccessMode::Write, SimTime(5)),
            RequestOutcome::Waiting
        );
        assert_eq!(
            lm.request(e(3), Key(1), AccessMode::Read, SimTime(6)),
            RequestOutcome::Waiting
        );
        lm.check_invariants();
        let woken = lm.release_all(e(1), SimTime(10));
        assert_eq!(
            woken,
            vec![e(2)],
            "writer first (FIFO), reader still blocked"
        );
        let woken = lm.release_all(e(2), SimTime(20));
        assert_eq!(woken, vec![e(3)]);
        lm.check_invariants();
    }

    #[test]
    fn waiting_writer_blocks_later_readers() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        assert_eq!(
            lm.request(e(2), Key(1), AccessMode::Write, T0),
            RequestOutcome::Waiting
        );
        // A later reader must NOT skip the queued writer.
        assert_eq!(
            lm.request(e(3), Key(1), AccessMode::Read, T0),
            RequestOutcome::Waiting
        );
        let woken = lm.release_all(e(1), SimTime(1));
        assert_eq!(woken, vec![e(2)]);
        let woken = lm.release_all(e(2), SimTime(2));
        assert_eq!(woken, vec![e(3)]);
    }

    #[test]
    fn reentrant_requests() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Write, T0),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Write, T0),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Read, T0),
            RequestOutcome::Granted
        );
        assert_eq!(lm.grant_count(), 1, "re-entry must not duplicate grants");
    }

    #[test]
    fn sole_holder_upgrade_is_instant() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Write, SimTime(2)),
            RequestOutcome::Granted
        );
        assert_eq!(lm.mode_of(e(1), Key(1)), Some(AccessMode::Write));
        assert_eq!(lm.stats().instant_upgrades.get(), 1);
    }

    #[test]
    fn contended_upgrade_waits_then_wins() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        lm.request(e(2), Key(1), AccessMode::Read, T0);
        // e2 wants to upgrade: must wait for e1.
        assert_eq!(
            lm.request(e(2), Key(1), AccessMode::Write, SimTime(1)),
            RequestOutcome::Waiting
        );
        // A later fresh writer queues behind the upgrade.
        assert_eq!(
            lm.request(e(3), Key(1), AccessMode::Write, SimTime(2)),
            RequestOutcome::Waiting
        );
        let woken = lm.release_all(e(1), SimTime(3));
        assert_eq!(woken, vec![e(2)], "upgrade granted first");
        assert_eq!(lm.mode_of(e(2), Key(1)), Some(AccessMode::Write));
        let woken = lm.release_all(e(2), SimTime(4));
        assert_eq!(woken, vec![e(3)]);
        lm.check_invariants();
    }

    #[test]
    fn release_read_locks_keeps_writes() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        lm.request(e(1), Key(2), AccessMode::Write, T0);
        lm.request(e(2), Key(1), AccessMode::Write, T0);
        lm.request(e(3), Key(2), AccessMode::Read, T0);
        let woken = lm.release_read_locks(e(1), SimTime(5));
        assert_eq!(woken, vec![e(2)], "reader on k1 released, writer unblocked");
        assert_eq!(
            lm.mode_of(e(1), Key(2)),
            Some(AccessMode::Write),
            "write lock retained"
        );
        assert!(lm.waiting_on(e(3)).is_some(), "k2 reader still blocked");
        lm.check_invariants();
    }

    #[test]
    fn cancel_wait_unblocks_followers() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        lm.request(e(2), Key(1), AccessMode::Write, T0); // waits
        lm.request(e(3), Key(1), AccessMode::Read, T0); // waits behind writer
        let woken = lm.cancel_wait(e(2));
        assert_eq!(woken, vec![e(3)], "reader compatible once writer cancelled");
        assert_eq!(lm.stats().cancelled_waits.get(), 1);
        lm.check_invariants();
    }

    #[test]
    fn waits_for_and_deadlock_detection() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Write, T0);
        lm.request(e(2), Key(2), AccessMode::Write, T0);
        lm.request(e(1), Key(2), AccessMode::Write, T0); // e1 waits on e2
        assert!(lm.find_deadlock().is_none());
        lm.request(e(2), Key(1), AccessMode::Write, T0); // e2 waits on e1: cycle
        let cycle = lm.find_deadlock().expect("deadlock expected");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&e(1)) && cycle.contains(&e(2)));
        assert_eq!(lm.stats().deadlocks_detected.get(), 1);
    }

    #[test]
    fn upgrade_deadlock_detected() {
        // Two readers both trying to upgrade: classic conversion deadlock.
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Read, T0);
        lm.request(e(2), Key(1), AccessMode::Read, T0);
        assert_eq!(
            lm.request(e(1), Key(1), AccessMode::Write, T0),
            RequestOutcome::Waiting
        );
        assert_eq!(
            lm.request(e(2), Key(1), AccessMode::Write, T0),
            RequestOutcome::Waiting
        );
        let cycle = lm.find_deadlock().expect("conversion deadlock");
        assert!(cycle.contains(&e(1)) || cycle.contains(&e(2)));
    }

    #[test]
    fn deadlock_resolved_by_victim_abort() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Write, T0);
        lm.request(e(2), Key(2), AccessMode::Write, T0);
        lm.request(e(1), Key(2), AccessMode::Write, T0);
        lm.request(e(2), Key(1), AccessMode::Write, T0);
        assert!(lm.find_deadlock().is_some());
        // Abort e2: cancel its wait and release its locks.
        let woken = lm.release_all(e(2), SimTime(9));
        assert_eq!(woken, vec![e(1)]);
        assert!(lm.find_deadlock().is_none());
        lm.check_invariants();
    }

    #[test]
    fn hold_time_statistics() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Write, SimTime(100));
        lm.request(e(1), Key(2), AccessMode::Read, SimTime(100));
        lm.release_all(e(1), SimTime(600));
        assert_eq!(lm.stats().exclusive_hold.count(), 1);
        assert_eq!(lm.stats().shared_hold.count(), 1);
        assert!((lm.stats().exclusive_hold.mean() - 500.0).abs() < 1.0);
    }

    #[test]
    fn wait_time_statistics() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Write, SimTime(0));
        lm.request(e(2), Key(1), AccessMode::Write, SimTime(10));
        lm.release_all(e(1), SimTime(250));
        assert_eq!(lm.stats().wait_time.count(), 1);
        assert!((lm.stats().wait_time.mean() - 240.0).abs() < 16.0);
    }

    #[test]
    fn release_all_of_unknown_exec_is_noop() {
        let mut lm = LockManager::new();
        assert!(lm.release_all(e(9), T0).is_empty());
        lm.check_invariants();
    }

    #[test]
    fn holders_listing() {
        let mut lm = LockManager::new();
        lm.request(e(2), Key(1), AccessMode::Read, T0);
        lm.request(e(1), Key(2), AccessMode::Write, T0);
        assert_eq!(lm.holders(), vec![e(1), e(2)]);
    }

    #[test]
    fn table_entries_are_reclaimed() {
        let mut lm = LockManager::new();
        lm.request(e(1), Key(1), AccessMode::Write, T0);
        lm.release_all(e(1), SimTime(1));
        assert_eq!(lm.grant_count(), 0);
        assert!(lm.table.is_empty(), "empty entries must be dropped");
        assert!(lm.held.is_empty());
        assert!(lm.waiting.is_empty());
    }
}
