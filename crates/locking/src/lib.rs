//! # o2pc-locking
//!
//! A strict two-phase-locking lock manager for one site.
//!
//! * Shared/exclusive modes with re-entrant requests and S→X upgrades.
//! * FIFO queueing (no starvation: a waiting exclusive request blocks later
//!   shared requests on the same item).
//! * A waits-for graph and cycle detector for local deadlock detection — the
//!   paper's §6.2 discussion of marking-set deadlocks is exercised against
//!   exactly this detector.
//! * Hold-time and wait-time statistics on the virtual clock; the E1
//!   experiment (lock-hold-time under 2PC vs O2PC) reads them directly.
//!
//! What the lock manager deliberately does **not** know: whose locks are
//! released when. Strictness, the D2PL rule ("exclusive locks held until the
//! decision message"), and the O2PC rule ("all locks released at the commit
//! vote") are timing policies of the protocol layer; the lock manager only
//! offers `release_all` / `release_read_locks` primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod stats;

pub use manager::{LockManager, RequestOutcome};
pub use stats::LockStats;
