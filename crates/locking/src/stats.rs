//! Lock-manager statistics.

use o2pc_common::{Counter, Duration, Histogram};

/// Aggregate statistics maintained by the lock manager.
///
/// Hold times are recorded when a grant is released; wait times when a queued
/// request is finally granted (or cancelled). All times are virtual-clock
/// microseconds.
#[derive(Clone, Debug, Default)]
pub struct LockStats {
    /// Hold-time distribution of *exclusive* grants (µs).
    pub exclusive_hold: Histogram,
    /// Hold-time distribution of *shared* grants (µs).
    pub shared_hold: Histogram,
    /// Queueing delay of requests that had to wait (µs).
    pub wait_time: Histogram,
    /// Requests granted immediately.
    pub immediate_grants: Counter,
    /// Requests that entered the wait queue.
    pub queued_requests: Counter,
    /// Waits cancelled (waiter aborted while queued).
    pub cancelled_waits: Counter,
    /// S→X upgrades performed in place.
    pub instant_upgrades: Counter,
    /// Deadlock cycles reported by the detector.
    pub deadlocks_detected: Counter,
}

impl LockStats {
    /// New zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the release of a grant held for `held`.
    pub fn record_hold(&mut self, exclusive: bool, held: Duration) {
        if exclusive {
            self.exclusive_hold.record(held.as_micros());
        } else {
            self.shared_hold.record(held.as_micros());
        }
    }

    /// Record that a queued request waited `waited` before being granted.
    pub fn record_wait(&mut self, waited: Duration) {
        self.wait_time.record(waited.as_micros());
    }

    /// Merge per-site statistics into a system-wide aggregate.
    pub fn merge(&mut self, other: &LockStats) {
        self.exclusive_hold.merge(&other.exclusive_hold);
        self.shared_hold.merge(&other.shared_hold);
        self.wait_time.merge(&other.wait_time);
        self.immediate_grants.add(other.immediate_grants.get());
        self.queued_requests.add(other.queued_requests.get());
        self.cancelled_waits.add(other.cancelled_waits.get());
        self.instant_upgrades.add(other.instant_upgrades.get());
        self.deadlocks_detected.add(other.deadlocks_detected.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = LockStats::new();
        a.record_hold(true, Duration::micros(100));
        a.record_hold(false, Duration::micros(10));
        a.record_wait(Duration::micros(50));
        a.immediate_grants.inc();
        let mut b = LockStats::new();
        b.record_hold(true, Duration::micros(300));
        b.queued_requests.add(2);
        a.merge(&b);
        assert_eq!(a.exclusive_hold.count(), 2);
        assert_eq!(a.shared_hold.count(), 1);
        assert_eq!(a.wait_time.count(), 1);
        assert_eq!(a.immediate_grants.get(), 1);
        assert_eq!(a.queued_requests.get(), 2);
        assert!(a.exclusive_hold.mean() > 150.0);
    }
}
