//! Property tests: the lock manager under arbitrary schedules.

use o2pc_common::{AccessMode, ExecId, GlobalTxnId, Key, SimTime};
use o2pc_locking::{LockManager, RequestOutcome};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Action {
    /// Exec `e` requests `key` with `write` mode (ignored if waiting).
    Request { e: u8, key: u8, write: bool },
    /// Exec `e` releases everything it holds / cancels its wait.
    Release { e: u8 },
}

fn action_strategy(execs: u8, keys: u8) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..execs, 0..keys, any::<bool>())
            .prop_map(|(e, key, write)| Action::Request { e, key, write }),
        1 => (0..execs).prop_map(|e| Action::Release { e }),
    ]
}

fn exec(i: u8) -> ExecId {
    ExecId::Sub(GlobalTxnId(i as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants hold after every step, and no wakeup is ever lost: once
    /// every execution releases, the table must drain completely.
    #[test]
    fn no_lost_wakeups_and_invariants(actions in prop::collection::vec(action_strategy(6, 4), 1..120)) {
        let mut lm = LockManager::new();
        let mut clock = 0u64;
        let mut waiting: HashSet<ExecId> = HashSet::new();

        for a in &actions {
            clock += 1;
            let now = SimTime(clock);
            match *a {
                Action::Request { e, key, write } => {
                    let ex = exec(e);
                    if waiting.contains(&ex) {
                        continue; // sequential execs cannot issue while parked
                    }
                    let mode = if write { AccessMode::Write } else { AccessMode::Read };
                    if lm.request(ex, Key(key as u64), mode, now) == RequestOutcome::Waiting {
                        waiting.insert(ex);
                    }
                }
                Action::Release { e } => {
                    let ex = exec(e);
                    let woken = lm.release_all(ex, now);
                    waiting.remove(&ex);
                    for w in woken {
                        prop_assert!(waiting.remove(&w), "woke {w} which was not waiting");
                    }
                }
            }
            lm.check_invariants();
            // The waiting sets agree.
            for &w in &waiting {
                prop_assert!(lm.waiting_on(w).is_some());
            }
        }

        // Drain: repeatedly release everyone until quiescent. Deadlocked
        // groups are broken by aborting one member, as the engine would.
        let mut rounds = 0;
        loop {
            rounds += 1;
            prop_assert!(rounds < 1000, "drain did not converge");
            clock += 1;
            let holders = lm.holders();
            if holders.is_empty() && waiting.is_empty() {
                break;
            }
            if let Some(cycle) = lm.find_deadlock() {
                let victim = cycle[0];
                lm.release_all(victim, SimTime(clock));
                waiting.remove(&victim);
                continue;
            }
            let mut progressed = false;
            for h in holders {
                let woken = lm.release_all(h, SimTime(clock));
                waiting.remove(&h);
                for w in woken {
                    waiting.remove(&w);
                }
                progressed = true;
            }
            if !progressed && !waiting.is_empty() {
                // Only waiters left with no holders: queues must self-serve.
                let stuck: Vec<ExecId> = waiting.iter().copied().collect();
                for s in stuck {
                    lm.release_all(s, SimTime(clock));
                    waiting.remove(&s);
                }
            }
            lm.check_invariants();
        }
        prop_assert_eq!(lm.grant_count(), 0, "grants leaked");
    }

    /// Two conflicting grants never coexist (direct check on random traces).
    #[test]
    fn conflicting_grants_never_coexist(actions in prop::collection::vec(action_strategy(4, 2), 1..80)) {
        let mut lm = LockManager::new();
        let mut clock = 0u64;
        let mut waiting: HashSet<ExecId> = HashSet::new();
        // Track who currently holds which key in which mode, via outcomes.
        for a in &actions {
            clock += 1;
            match *a {
                Action::Request { e, key, write } => {
                    let ex = exec(e);
                    if waiting.contains(&ex) { continue; }
                    let mode = if write { AccessMode::Write } else { AccessMode::Read };
                    if lm.request(ex, Key(key as u64), mode, SimTime(clock)) == RequestOutcome::Waiting {
                        waiting.insert(ex);
                    }
                    // If granted a write, nobody else may hold the key.
                    if lm.mode_of(ex, Key(key as u64)) == Some(AccessMode::Write) {
                        for other in lm.holders() {
                            if other != ex {
                                prop_assert!(lm.mode_of(other, Key(key as u64)).is_none(),
                                    "{other} co-holds with exclusive owner {ex}");
                            }
                        }
                    }
                }
                Action::Release { e } => {
                    let woken = lm.release_all(exec(e), SimTime(clock));
                    waiting.remove(&exec(e));
                    for w in woken { waiting.remove(&w); }
                }
            }
            lm.check_invariants();
        }
    }
}
