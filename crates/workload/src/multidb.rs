//! Multidatabase workload: autonomy under global traffic.
//!
//! The paper's motivating setting (§1) is a *multidatabase*: autonomous,
//! possibly competing DBMSs whose local work must not be harmed by global
//! transactions — "it is undesirable … to use a protocol where a site
//! belonging to a competing organization can harmfully or mistakenly block
//! the local resources". This workload models that: each site runs a heavy
//! stream of its own local transactions while a configurable trickle of
//! global transactions cuts across sites. The statistic of interest is the
//! *local* transaction latency — how much does the foreign protocol inflate
//! it?

use crate::Schedule;
use o2pc_common::rng::Zipf;
use o2pc_common::{DetRng, Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::TxnRequest;

/// Autonomy-focused mix: per-site local streams + cross-site globals.
#[derive(Clone, Debug)]
pub struct MultidbWorkload {
    /// Number of autonomous sites.
    pub sites: u32,
    /// Data items per site.
    pub keys_per_site: u64,
    /// Initial value per item.
    pub initial_value: i64,
    /// Local transactions **per site**.
    pub locals_per_site: usize,
    /// Operations per local transaction.
    pub ops_per_local: usize,
    /// Global transactions (across 2 sites each) interleaved with the
    /// local streams.
    pub globals: usize,
    /// Operations per global subtransaction.
    pub ops_per_sub: usize,
    /// Mean inter-arrival time of local transactions at each site.
    pub local_interarrival: Duration,
    /// Mean inter-arrival time of global transactions (system-wide).
    pub global_interarrival: Duration,
    /// Zipf skew over each site's keys.
    pub zipf_theta: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for MultidbWorkload {
    fn default() -> Self {
        MultidbWorkload {
            sites: 4,
            keys_per_site: 16,
            initial_value: 100,
            locals_per_site: 150,
            ops_per_local: 3,
            globals: 60,
            ops_per_sub: 3,
            local_interarrival: Duration::millis(1),
            global_interarrival: Duration::millis(4),
            zipf_theta: 0.7,
            seed: 0x3D8,
        }
    }
}

impl MultidbWorkload {
    fn ops(&self, n: usize, rng: &mut DetRng, zipf: &Zipf) -> Vec<Op> {
        (0..n)
            .map(|_| {
                let key = Key(zipf.sample(rng) as u64);
                if rng.gen_bool(0.5) {
                    Op::Add(key, if rng.gen_bool(0.5) { 1 } else { -1 })
                } else {
                    Op::Read(key)
                }
            })
            .collect()
    }

    /// Generate the schedule (arrivals sorted by time).
    pub fn generate(&self) -> Schedule {
        assert!(self.sites >= 2);
        let mut rng = DetRng::new(self.seed);
        let zipf = Zipf::new(self.keys_per_site as usize, self.zipf_theta);
        let mut loads = Vec::new();
        for s in 0..self.sites {
            for k in 0..self.keys_per_site {
                loads.push((SiteId(s), Key(k), Value(self.initial_value)));
            }
        }
        let mut arrivals: Vec<(SimTime, TxnRequest)> = Vec::new();
        // Per-site local streams.
        for s in 0..self.sites {
            let mut t = SimTime::ZERO;
            let mut site_rng = rng.fork(s as u64 + 1);
            for _ in 0..self.locals_per_site {
                t += Duration::micros(
                    site_rng.gen_exp(self.local_interarrival.as_micros() as f64) as u64
                );
                let ops = self.ops(self.ops_per_local, &mut site_rng, &zipf);
                arrivals.push((t, TxnRequest::local(SiteId(s), ops)));
            }
        }
        // Global trickle.
        let mut t = SimTime::ZERO;
        for _ in 0..self.globals {
            t += Duration::micros(rng.gen_exp(self.global_interarrival.as_micros() as f64) as u64);
            let chosen = rng.sample_indices(self.sites as usize, 2);
            let subs = chosen
                .into_iter()
                .map(|s| {
                    (
                        SiteId(s as u32),
                        self.ops(self.ops_per_sub, &mut rng, &zipf),
                    )
                })
                .collect();
            arrivals.push((t, TxnRequest::global(subs)));
        }
        arrivals.sort_by_key(|&(t, _)| t);
        Schedule { loads, arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_order() {
        let w = MultidbWorkload {
            locals_per_site: 20,
            globals: 10,
            ..Default::default()
        };
        let s = w.generate();
        assert_eq!(s.arrivals.len(), 4 * 20 + 10);
        for pair in s.arrivals.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "arrivals must be time-sorted");
        }
        let locals = s
            .arrivals
            .iter()
            .filter(|(_, r)| matches!(r, TxnRequest::Local { .. }))
            .count();
        assert_eq!(locals, 80);
    }

    #[test]
    fn locals_are_spread_over_all_sites() {
        let w = MultidbWorkload {
            locals_per_site: 30,
            globals: 0,
            ..Default::default()
        };
        let mut per_site = vec![0usize; w.sites as usize];
        for (_, r) in w.generate().arrivals {
            if let TxnRequest::Local { site, .. } = r {
                per_site[site.index()] += 1;
            }
        }
        assert!(per_site.iter().all(|&c| c == 30), "{per_site:?}");
    }

    #[test]
    fn deterministic() {
        let w = MultidbWorkload::default();
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.0, y.0);
        }
    }
}
