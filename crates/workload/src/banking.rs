//! Multi-site bank transfers.

use crate::Schedule;
use o2pc_common::{DetRng, Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::TxnRequest;

/// Money transfers between accounts held at different branches (sites).
/// All updates are commutative `Add` deltas, so compensation is exact and
/// the total amount of money is a run invariant.
#[derive(Clone, Debug)]
pub struct BankingWorkload {
    /// Number of branch sites.
    pub sites: u32,
    /// Accounts per branch.
    pub accounts_per_site: u64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Number of global transfer transactions.
    pub transfers: usize,
    /// Sites touched per transfer (2 = classic pairwise transfer; more
    /// models salary-batch style fan-out).
    pub sites_per_transfer: usize,
    /// Mean inter-arrival time (exponential).
    pub mean_interarrival: Duration,
    /// Fraction of arrivals that are single-site local transactions
    /// (balance audits + small adjustments).
    pub local_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for BankingWorkload {
    fn default() -> Self {
        BankingWorkload {
            sites: 4,
            accounts_per_site: 16,
            initial_balance: 1_000,
            transfers: 200,
            sites_per_transfer: 2,
            mean_interarrival: Duration::millis(2),
            local_fraction: 0.0,
            seed: 0xBA2C,
        }
    }
}

impl BankingWorkload {
    /// Generate the schedule.
    pub fn generate(&self) -> Schedule {
        assert!(self.sites >= 2, "transfers need at least two branches");
        assert!(self.sites_per_transfer >= 2 && self.sites_per_transfer <= self.sites as usize);
        let mut rng = DetRng::new(self.seed);
        let mut loads = Vec::new();
        for s in 0..self.sites {
            for a in 0..self.accounts_per_site {
                loads.push((SiteId(s), Key(a), Value(self.initial_balance)));
            }
        }
        let mut arrivals = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..self.transfers {
            t += Duration::micros(rng.gen_exp(self.mean_interarrival.as_micros() as f64) as u64);
            if rng.gen_bool(self.local_fraction) {
                let site = SiteId(rng.gen_range(self.sites as u64) as u32);
                let acct = Key(rng.gen_range(self.accounts_per_site));
                // Audit-and-adjust: read then a net-zero pair of updates.
                arrivals.push((
                    t,
                    TxnRequest::local(
                        site,
                        vec![Op::Read(acct), Op::Add(acct, 1), Op::Add(acct, -1)],
                    ),
                ));
                continue;
            }
            let chosen = rng.sample_indices(self.sites as usize, self.sites_per_transfer);
            let amount = 1 + rng.gen_range(50) as i64;
            let mut subs = Vec::with_capacity(chosen.len());
            // First site is the source; the amount is split over the rest.
            let share = amount / (chosen.len() as i64 - 1).max(1);
            let mut distributed = 0;
            for (i, &s) in chosen.iter().enumerate() {
                let acct = Key(rng.gen_range(self.accounts_per_site));
                let ops = if i == 0 {
                    vec![Op::Read(acct), Op::Add(acct, -amount)]
                } else {
                    let d = if i == chosen.len() - 1 {
                        amount - distributed
                    } else {
                        share
                    };
                    distributed += d;
                    vec![Op::Add(acct, d)]
                };
                subs.push((SiteId(s as u32), ops));
            }
            arrivals.push((t, TxnRequest::global(subs)));
        }
        Schedule { loads, arrivals }
    }

    /// The invariant total (sum of all balances).
    pub fn expected_total(&self) -> i64 {
        self.sites as i64 * self.accounts_per_site as i64 * self.initial_balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let w = BankingWorkload {
            transfers: 50,
            ..Default::default()
        };
        let s = w.generate();
        assert_eq!(
            s.loads.len(),
            (w.sites as u64 * w.accounts_per_site) as usize
        );
        assert_eq!(s.arrivals.len(), 50);
        assert_eq!(s.total_loaded(), w.expected_total());
        // Arrivals are time-ordered.
        for pair in s.arrivals.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn transfers_are_zero_sum() {
        let w = BankingWorkload {
            transfers: 100,
            sites_per_transfer: 3,
            seed: 9,
            ..Default::default()
        };
        for (_, req) in w.generate().arrivals {
            if let TxnRequest::Global { subs, .. } = req {
                let net: i64 = subs
                    .iter()
                    .flat_map(|(_, ops)| ops.iter())
                    .map(|op| match op {
                        Op::Add(_, d) => *d,
                        _ => 0,
                    })
                    .sum();
                assert_eq!(net, 0, "transfer must be zero-sum");
                // Distinct sites.
                let mut sites: Vec<_> = subs.iter().map(|(s, _)| *s).collect();
                sites.dedup();
                assert_eq!(sites.len(), 3);
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let w = BankingWorkload {
            transfers: 30,
            ..Default::default()
        };
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(b.arrivals.iter()) {
            assert_eq!(x.0, y.0);
        }
    }

    #[test]
    fn local_fraction_generates_locals() {
        let w = BankingWorkload {
            transfers: 200,
            local_fraction: 0.5,
            ..Default::default()
        };
        let locals = w
            .generate()
            .arrivals
            .iter()
            .filter(|(_, r)| matches!(r, TxnRequest::Local { .. }))
            .count();
        assert!((60..=140).contains(&locals), "locals ≈ half: {locals}");
    }
}
