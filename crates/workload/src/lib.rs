//! # o2pc-workload
//!
//! Parameterised, seed-deterministic workload generators for the experiment
//! harness:
//!
//! * [`banking`] — multi-site money transfers over `Add` deltas (restricted
//!   model; the conservation-of-money invariant makes semantic atomicity
//!   directly checkable).
//! * [`travel`] — the classic federated booking scenario the multidatabase
//!   literature motivates (flight + hotel + car at different autonomous
//!   sites, `Reserve`/`Release` with organic aborts when inventory runs
//!   out).
//! * [`generic`] — a YCSB-style read/write mix with zipfian hotspots and a
//!   tunable local/global ratio, used by the contention sweeps.
//! * [`multidb`] — the multidatabase-autonomy mix of the paper's §1: heavy
//!   per-site local streams disturbed by a trickle of global transactions;
//!   the metric is how much each commit protocol inflates *local* latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banking;
pub mod generic;
pub mod multidb;
pub mod travel;

pub use banking::BankingWorkload;
pub use generic::GenericWorkload;
pub use multidb::MultidbWorkload;
pub use travel::TravelWorkload;

use o2pc_common::SimTime;
use o2pc_core::TxnRequest;

/// A generated workload: the initial data placement plus a time-stamped
/// arrival schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// `(site, key, value)` initial loads.
    pub loads: Vec<(o2pc_common::SiteId, o2pc_common::Key, o2pc_common::Value)>,
    /// Arrivals in non-decreasing time order.
    pub arrivals: Vec<(SimTime, TxnRequest)>,
}

impl Schedule {
    /// Install the loads and submit every arrival into an engine (on any
    /// runtime substrate).
    pub fn install<R>(&self, engine: &mut o2pc_core::Engine<R>)
    where
        R: o2pc_runtime::Runtime<o2pc_core::TimerEvent, o2pc_core::Msg>,
    {
        for &(s, k, v) in &self.loads {
            engine.load(s, k, v);
        }
        for (t, req) in &self.arrivals {
            engine.submit_at(*t, req.clone());
        }
    }

    /// Sum of all loaded values (conservation checks).
    pub fn total_loaded(&self) -> i64 {
        self.loads.iter().map(|&(_, _, v)| v.0).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2pc_common::{Key, SiteId, Value};

    #[test]
    fn schedule_totals() {
        let s = Schedule {
            loads: vec![
                (SiteId(0), Key(0), Value(10)),
                (SiteId(1), Key(0), Value(20)),
            ],
            arrivals: vec![],
        };
        assert_eq!(s.total_loaded(), 30);
    }
}
