//! Generic read/write mix (YCSB-style) with zipfian hotspots.

use crate::Schedule;
use o2pc_common::rng::Zipf;
use o2pc_common::{DetRng, Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::TxnRequest;

/// A tunable read/write mix: the contention sweeps (experiment E2) drive
/// multiprogramming level via `mean_interarrival` and data contention via
/// `zipf_theta` / `keys_per_site`.
#[derive(Clone, Debug)]
pub struct GenericWorkload {
    /// Number of sites.
    pub sites: u32,
    /// Keys per site.
    pub keys_per_site: u64,
    /// Initial value per key.
    pub initial_value: i64,
    /// Number of transactions.
    pub txns: usize,
    /// Operations per subtransaction.
    pub ops_per_sub: usize,
    /// Sites per global transaction.
    pub sites_per_txn: usize,
    /// Fraction of operations that are writes (`Add` deltas).
    pub write_fraction: f64,
    /// Fraction of arrivals that are local transactions.
    pub local_fraction: f64,
    /// Zipf skew over keys (0 = uniform).
    pub zipf_theta: f64,
    /// Mean inter-arrival time — the multiprogramming-level knob.
    pub mean_interarrival: Duration,
    /// Seed.
    pub seed: u64,
}

impl Default for GenericWorkload {
    fn default() -> Self {
        GenericWorkload {
            sites: 4,
            keys_per_site: 32,
            initial_value: 100,
            txns: 300,
            ops_per_sub: 4,
            sites_per_txn: 2,
            write_fraction: 0.5,
            local_fraction: 0.0,
            zipf_theta: 0.0,
            mean_interarrival: Duration::millis(1),
            seed: 0x9E4E,
        }
    }
}

impl GenericWorkload {
    fn ops(&self, rng: &mut DetRng, zipf: &Zipf) -> Vec<Op> {
        (0..self.ops_per_sub)
            .map(|_| {
                let key = Key(zipf.sample(rng) as u64);
                if rng.gen_bool(self.write_fraction) {
                    // Deltas cancel in expectation; invariants don't matter
                    // here, contention does.
                    Op::Add(key, if rng.gen_bool(0.5) { 1 } else { -1 })
                } else {
                    Op::Read(key)
                }
            })
            .collect()
    }

    /// Generate the schedule.
    pub fn generate(&self) -> Schedule {
        assert!(self.sites_per_txn >= 1 && self.sites_per_txn <= self.sites as usize);
        let mut rng = DetRng::new(self.seed);
        let zipf = Zipf::new(self.keys_per_site as usize, self.zipf_theta);
        let mut loads = Vec::new();
        for s in 0..self.sites {
            for k in 0..self.keys_per_site {
                loads.push((SiteId(s), Key(k), Value(self.initial_value)));
            }
        }
        let mut arrivals = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..self.txns {
            t += Duration::micros(rng.gen_exp(self.mean_interarrival.as_micros() as f64) as u64);
            if rng.gen_bool(self.local_fraction) {
                let site = SiteId(rng.gen_range(self.sites as u64) as u32);
                let ops = self.ops(&mut rng, &zipf);
                arrivals.push((t, TxnRequest::local(site, ops)));
            } else {
                let chosen = rng.sample_indices(self.sites as usize, self.sites_per_txn);
                let subs = chosen
                    .into_iter()
                    .map(|s| (SiteId(s as u32), self.ops(&mut rng, &zipf)))
                    .collect();
                arrivals.push((t, TxnRequest::global(subs)));
            }
        }
        Schedule { loads, arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let w = GenericWorkload {
            txns: 25,
            ..Default::default()
        };
        let s = w.generate();
        assert_eq!(s.arrivals.len(), 25);
        assert_eq!(s.loads.len(), (w.sites as u64 * w.keys_per_site) as usize);
    }

    #[test]
    fn write_fraction_respected() {
        let w = GenericWorkload {
            txns: 200,
            write_fraction: 0.25,
            ..Default::default()
        };
        let mut writes = 0usize;
        let mut total = 0usize;
        for (_, req) in w.generate().arrivals {
            let subs = match req {
                TxnRequest::Global { subs, .. } => subs,
                TxnRequest::Local { site, ops } => vec![(site, ops)],
            };
            for (_, ops) in subs {
                for op in ops {
                    total += 1;
                    if matches!(op, Op::Add(..)) {
                        writes += 1;
                    }
                }
            }
        }
        let frac = writes as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.05, "{frac}");
    }

    #[test]
    fn hotspot_skew_concentrates_keys() {
        let hot = GenericWorkload {
            txns: 300,
            zipf_theta: 0.99,
            ..Default::default()
        };
        let mut count_key0 = 0usize;
        let mut total = 0usize;
        for (_, req) in hot.generate().arrivals {
            if let TxnRequest::Global { subs, .. } = req {
                for (_, ops) in subs {
                    for op in ops {
                        total += 1;
                        if op.key() == Key(0) {
                            count_key0 += 1;
                        }
                    }
                }
            }
        }
        let frac = count_key0 as f64 / total as f64;
        assert!(frac > 0.10, "hottest key should dominate: {frac}");
    }

    #[test]
    fn single_site_global_allowed() {
        let w = GenericWorkload {
            sites_per_txn: 1,
            txns: 5,
            ..Default::default()
        };
        assert_eq!(w.generate().arrivals.len(), 5);
    }
}
