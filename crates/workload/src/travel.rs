//! Federated travel booking (restricted model).

use crate::Schedule;
use o2pc_common::{DetRng, Duration, Key, Op, SimTime, SiteId, Value};
use o2pc_core::TxnRequest;

/// Trip bookings across autonomous reservation systems: a flight site, a
/// hotel site, and a car-rental site (repeated in blocks when more sites
/// are requested). Each booking `Reserve`s one unit of a date-keyed
/// inventory item at every leg; an exhausted item makes that subtransaction
/// fail, so the global booking aborts and the already-reserved legs are
/// compensated with `Release` — the paper's restricted-model story, with
/// *organic* aborts whose rate is controlled by inventory scarcity.
#[derive(Clone, Debug)]
pub struct TravelWorkload {
    /// Number of reservation sites (≥ 2).
    pub sites: u32,
    /// Inventory items (dates/resources) per site.
    pub items_per_site: u64,
    /// Initial units per item — scarcity knob: lower = more organic aborts.
    pub capacity: i64,
    /// Number of trip bookings.
    pub bookings: usize,
    /// Legs per trip (sites touched).
    pub legs: usize,
    /// Mean inter-arrival time.
    pub mean_interarrival: Duration,
    /// Seed.
    pub seed: u64,
}

impl Default for TravelWorkload {
    fn default() -> Self {
        TravelWorkload {
            sites: 3,
            items_per_site: 8,
            capacity: 10,
            bookings: 100,
            legs: 3,
            mean_interarrival: Duration::millis(2),
            seed: 0x7AE1,
        }
    }
}

impl TravelWorkload {
    /// Generate the schedule.
    pub fn generate(&self) -> Schedule {
        assert!(self.legs >= 2 && self.legs <= self.sites as usize);
        let mut rng = DetRng::new(self.seed);
        let mut loads = Vec::new();
        for s in 0..self.sites {
            for i in 0..self.items_per_site {
                loads.push((SiteId(s), Key(i), Value(self.capacity)));
            }
        }
        let mut arrivals = Vec::new();
        let mut t = SimTime::ZERO;
        for _ in 0..self.bookings {
            t += Duration::micros(rng.gen_exp(self.mean_interarrival.as_micros() as f64) as u64);
            let chosen = rng.sample_indices(self.sites as usize, self.legs);
            let subs = chosen
                .into_iter()
                .map(|s| {
                    let item = Key(rng.gen_range(self.items_per_site));
                    (SiteId(s as u32), vec![Op::Read(item), Op::Reserve(item, 1)])
                })
                .collect();
            arrivals.push((t, TxnRequest::global(subs)));
        }
        Schedule { loads, arrivals }
    }

    /// Total units loaded.
    pub fn total_units(&self) -> i64 {
        self.sites as i64 * self.items_per_site as i64 * self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let w = TravelWorkload {
            bookings: 40,
            ..Default::default()
        };
        let s = w.generate();
        assert_eq!(s.arrivals.len(), 40);
        assert_eq!(s.total_loaded(), w.total_units());
        let s2 = w.generate();
        assert_eq!(s.arrivals.len(), s2.arrivals.len());
    }

    #[test]
    fn each_booking_reserves_on_distinct_sites() {
        let w = TravelWorkload {
            legs: 3,
            bookings: 50,
            ..Default::default()
        };
        for (_, req) in w.generate().arrivals {
            let TxnRequest::Global { subs, .. } = req else {
                panic!("all global")
            };
            assert_eq!(subs.len(), 3);
            let mut sites: Vec<_> = subs.iter().map(|(s, _)| *s).collect();
            sites.sort();
            sites.dedup();
            assert_eq!(sites.len(), 3);
            for (_, ops) in subs {
                assert!(ops.iter().any(|o| matches!(o, Op::Reserve(_, 1))));
            }
        }
    }
}
