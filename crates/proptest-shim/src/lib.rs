//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the real `proptest` cannot be fetched. This crate implements
//! the (small) API subset the workspace's property tests use — strategies
//! built from integer ranges, tuples, `prop_map`, weighted `prop_oneof!`,
//! `prop::collection::vec`, `any::<T>()`, and the `proptest!` runner macro —
//! with deterministic sampling and **no shrinking**: a failing case prints
//! the offending input and the case number instead of a minimized
//! counterexample.
//!
//! Sampling is seeded per test name (override with `PROPTEST_SEED=<u64>`),
//! so failures reproduce across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG driving strategy sampling.

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed a generator for the named test. The `PROPTEST_SEED`
        /// environment variable perturbs every test's stream at once.
        pub fn for_test(name: &str) -> TestRng {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(base ^ h)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (the subset the workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs. Unlike real proptest there is no shrinking;
/// `sample` is the whole contract.
pub trait Strategy {
    /// The type of value generated.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A boxed strategy (the element type of `prop_oneof!` unions).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Box a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies over one value type (see `prop_oneof!`).
pub struct OneOf<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: std::fmt::Debug> OneOf<V> {
    /// Build from `(weight, strategy)` pairs; weights must not all be zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = choices.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { choices, total }
    }
}

impl<V: std::fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight walk exhausted")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Any value of `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + off) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*}
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection sizes: an exact count or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The property-test runner macro. Mirrors real proptest's surface: an
/// optional `#![proptest_config(..)]` inner attribute followed by test
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let strat = ($($strat,)+);
            for case in 0..config.cases {
                let value = $crate::Strategy::sample(&strat, &mut rng);
                let repr = format!("{:?}", value);
                let ($($pat,)+) = value;
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed (no shrinking) for input:\n  {}",
                        case + 1, config.cases, stringify!($name), repr,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert inside a property (panics; no rejection bookkeeping).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(-20i8..20), &mut rng);
            assert!((-20..20).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_size() {
        let mut rng = crate::test_runner::TestRng::for_test("lens");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u8..3, 1..6), &mut rng);
            assert!((1..6).contains(&v.len()));
            let exact = Strategy::sample(&prop::collection::vec(0u8..3, 3usize), &mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    #[test]
    fn oneof_weights_cover_all_choices() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let strat = prop_oneof![3 => (0u8..1).prop_map(|_| "a"), 1 => (0u8..1).prop_map(|_| "b")];
        let mut seen_a = 0;
        let mut seen_b = 0;
        for _ in 0..400 {
            match Strategy::sample(&strat, &mut rng) {
                "a" => seen_a += 1,
                _ => seen_b += 1,
            }
        }
        assert!(
            seen_a > seen_b,
            "weight 3 should dominate: {seen_a} vs {seen_b}"
        );
        assert!(seen_b > 0, "weight 1 must still be sampled");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn runner_draws_every_case(xs in prop::collection::vec(any::<bool>(), 0..8), n in 1u32..5) {
            prop_assert!(xs.len() < 8);
            prop_assert!((1..5).contains(&n));
        }
    }
}
