//! A small worker pool for embarrassingly parallel, deterministic jobs.
//!
//! Every harness in this repo (chaos schedules, experiment sweep points,
//! shrink candidates) runs many *isolated* deterministic engine executions:
//! each job is a pure function of its index, so the only thing parallelism
//! could perturb is the order results come back. The pool therefore makes
//! one promise: **results are consumed strictly in job-index order**, no
//! matter which worker finished first. A harness that folds the consumed
//! results into its summary produces byte-identical output at any core
//! count — `--cores 8` is just `--cores 1` with the waiting removed.
//!
//! With `cores <= 1` (or a single job) every entry point degrades to the
//! plain sequential loop — zero threads, zero channels — so single-core
//! perf baselines measure the workload, not the pool.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of hardware threads available to this process (`1` if unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a `--cores` argument: `0` (or an absent flag mapped to `0`)
/// means "all available".
pub fn resolve_cores(requested: usize) -> usize {
    if requested == 0 {
        available_cores()
    } else {
        requested
    }
}

/// Run `run(i)` for every `i in 0..jobs` on `cores` worker threads and hand
/// each result to `consume(i, result)` **in index order**. `consume`
/// returns `true` to keep going; returning `false` cancels the remaining
/// jobs (workers stop claiming new indices; results already in flight are
/// discarded). This mirrors a sequential `for` loop with `break` exactly —
/// including which job indices `consume` observes before stopping.
///
/// Out-of-order completions are buffered until their predecessors arrive,
/// so peak buffering is bounded by the number of in-flight workers.
pub fn for_each_ordered<T, F, C>(jobs: usize, cores: usize, run: F, mut consume: C)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, T) -> bool,
{
    if jobs == 0 {
        return;
    }
    let workers = cores.min(jobs);
    if workers <= 1 {
        for i in 0..jobs {
            if !consume(i, run(i)) {
                return;
            }
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let cancelled = &cancelled;
            let run = &run;
            scope.spawn(move || loop {
                if cancelled.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    return;
                }
                let out = run(i);
                // A closed channel means the consumer stopped: just exit.
                if tx.send((i, out)).is_err() {
                    return;
                }
            });
        }
        drop(tx); // the channel closes once every worker exits

        let mut pending: std::collections::HashMap<usize, T> = std::collections::HashMap::new();
        let mut want = 0usize;
        while want < jobs {
            let Ok((i, out)) = rx.recv() else {
                break; // all workers gone (only after cancellation)
            };
            pending.insert(i, out);
            while let Some(out) = pending.remove(&want) {
                if !consume(want, out) {
                    cancelled.store(true, Ordering::Relaxed);
                    // Drop the receiver so in-flight sends fail fast, then
                    // let the scope join the workers.
                    return;
                }
                want += 1;
            }
        }
    });
}

/// Parallel map with a deterministic result order: `out[i] == run(i)`.
pub fn map_ordered<T, F>(jobs: usize, cores: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(jobs);
    out.resize_with(jobs, || None);
    for_each_ordered(jobs, cores, run, |i, t| {
        out[i] = Some(t);
        true
    });
    out.into_iter().map(|t| t.expect("job completed")).collect()
}

/// Smallest `i in 0..jobs` with `pred(i)`, evaluated on `cores` threads.
///
/// Matches the sequential scan-and-stop result exactly: a worker that finds
/// `pred(i)` true publishes `i` as the current best, and workers skip any
/// index at or above the best (such an index can never be the minimum once
/// a smaller hit exists). Indices *below* the best keep being evaluated, so
/// the final value is the true minimum, not merely the first found.
pub fn min_where<F>(jobs: usize, cores: usize, pred: F) -> Option<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    if jobs == 0 {
        return None;
    }
    let workers = cores.min(jobs);
    if workers <= 1 {
        return (0..jobs).find(|&i| pred(i));
    }
    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let best = &best;
            let pred = &pred;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs || i >= best.load(Ordering::Relaxed) {
                    return;
                }
                if pred(i) {
                    best.fetch_min(i, Ordering::Relaxed);
                }
            });
        }
    });
    let found = best.load(Ordering::Relaxed);
    (found != usize::MAX).then_some(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn results_arrive_in_order_at_any_core_count() {
        for cores in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            for_each_ordered(
                50,
                cores,
                |i| {
                    // Stagger completion order: later jobs finish sooner.
                    if cores > 1 {
                        std::thread::sleep(std::time::Duration::from_micros((50 - i as u64) * 10));
                    }
                    i * 3
                },
                |i, v| {
                    seen.push((i, v));
                    true
                },
            );
            let expect: Vec<(usize, usize)> = (0..50).map(|i| (i, i * 3)).collect();
            assert_eq!(seen, expect, "cores = {cores}");
        }
    }

    #[test]
    fn cancellation_stops_consumption_at_the_same_index() {
        for cores in [1, 3] {
            let mut seen = Vec::new();
            for_each_ordered(
                100,
                cores,
                |i| i,
                |i, v| {
                    seen.push(v);
                    i < 9 // stop after consuming index 9
                },
            );
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "cores = {cores}");
        }
    }

    #[test]
    fn map_ordered_matches_sequential() {
        let seq: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for cores in [1, 4] {
            assert_eq!(
                map_ordered(37, cores, |i| (i as u64).wrapping_mul(0x9E37)),
                seq
            );
        }
    }

    #[test]
    fn min_where_finds_the_true_minimum() {
        // Hits at 13, 7, 29 — with 7 the minimum; staggered timings let a
        // larger hit publish first so the skip logic is actually exercised.
        let hits = [13usize, 7, 29];
        for cores in [1, 2, 4] {
            let evaluated = Mutex::new(Vec::new());
            let found = min_where(40, cores, |i| {
                evaluated.lock().unwrap().push(i);
                if i == 13 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                hits.contains(&i)
            });
            assert_eq!(found, Some(7), "cores = {cores}");
        }
        assert_eq!(min_where(10, 4, |_| false), None);
        assert_eq!(min_where(0, 4, |_| true), None);
    }
}
