//! A fast, non-cryptographic hasher for the engine's hot maps.
//!
//! The engine's inner loop is dominated by map lookups keyed on small
//! integer ids (`ExecId`, `GlobalTxnId`, `Key`, …). The standard library's
//! default SipHash spends more cycles per lookup than the rest of the
//! operation combined; its DoS resistance buys nothing here — every key is
//! produced by our own deterministic workload generators, never by an
//! adversary. This is the multiply-rotate scheme popularized by the
//! rustc/Firefox "Fx" hasher: one rotate, one xor, one multiply per word.
//!
//! Determinism note: the repository's replayability guarantee never rests
//! on map iteration order (behaviour-affecting iterations are sorted or use
//! `BTreeMap`; the determinism suite's golden digests enforce this), so the
//! hasher is free to change — it only has to be fast and well-distributed.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for small trusted keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the fast hasher (hot-path maps keyed on small ids).
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast hasher.
pub type FastHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_sequential_ids() {
        // Sequential ids — the workload generators' natural key pattern —
        // must not collide in the low bits the table indexes with.
        let mut low_bits = FastHashSet::default();
        for i in 0..1024u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3ff);
        }
        assert!(
            low_bits.len() > 512,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 22");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 22");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is 23");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn maps_work() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.len(), 100);
    }
}
