//! Recorded execution histories.
//!
//! Every site emits an ordered stream of events (operation accesses plus
//! transaction lifecycle transitions). The concatenation per site is exactly
//! the *complete local history* of the paper's §5; `o2pc-sgraph` derives the
//! local and global serialization graphs from it.
//!
//! Note how roll-backs surface: when a site rolls back subtransaction `T_ij`
//! from the log, the undo writes are recorded as accesses of
//! `TxnId::Compensation(i)` — the paper models standard roll-back "as a
//! special case of a compensating transaction" (§3.2), and making that choice
//! in the history recorder is what lets a single SG builder serve both cases.

use crate::ids::{SiteId, TxnId};
use crate::ops::OpKind;
use crate::time::SimTime;
use crate::value::Key;
use std::collections::BTreeMap;

/// A consumer of history events.
///
/// The engine's hot path records every access and lifecycle transition; what
/// happens to those events is pluggable. [`History`] is the archival sink
/// (every event retained for offline audit), [`CountingSink`] is the
/// perf-run sink (constant memory, no allocation), and `o2pc-sgraph`'s
/// incremental builder is a sink that folds each event straight into the
/// serialization graphs.
pub trait HistorySink {
    /// Consume one event. Events arrive in per-site virtual-time order.
    fn record(&mut self, ev: HistEvent);

    /// Convenience: record an access event.
    fn record_access(
        &mut self,
        site: SiteId,
        txn: TxnId,
        kind: OpKind,
        key: Key,
        read_from: Option<TxnId>,
        time: SimTime,
    ) {
        self.record(HistEvent {
            site,
            txn,
            kind: HistEventKind::Access {
                kind,
                key,
                read_from,
            },
            time,
        });
    }
}

/// A sink that retains nothing: counts events and folds them into a running
/// digest. Lets perf runs skip history accumulation entirely while keeping
/// the recording path (and its determinism fingerprint) intact.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    /// Number of events consumed.
    pub events: u64,
    digest: u64,
}

impl CountingSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self {
            events: 0,
            digest: FNV_OFFSET,
        }
    }

    /// Running digest over the consumed events — identical to
    /// [`History::digest`] of the same event stream.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl HistorySink for CountingSink {
    fn record(&mut self, ev: HistEvent) {
        self.events += 1;
        self.digest = fold_event(self.digest, &ev);
    }
}

impl HistorySink for History {
    fn record(&mut self, ev: HistEvent) {
        self.push(ev);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_word(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[inline]
fn fnv_txn(mut h: u64, t: TxnId) -> u64 {
    match t {
        TxnId::Global(g) => {
            h = fnv_word(h, 1);
            fnv_word(h, g.0)
        }
        TxnId::Compensation(g) => {
            h = fnv_word(h, 2);
            fnv_word(h, g.0)
        }
        TxnId::Local(l) => {
            h = fnv_word(h, 3);
            h = fnv_word(h, l.site.0 as u64);
            fnv_word(h, l.seq)
        }
    }
}

/// Fold one event into an FNV-1a digest. The encoding is a stable,
/// injective flattening of every field — two digests agree only when the
/// event streams are byte-identical (up to hash collision).
fn fold_event(mut h: u64, ev: &HistEvent) -> u64 {
    h = fnv_word(h, ev.site.0 as u64);
    h = fnv_txn(h, ev.txn);
    h = fnv_word(h, ev.time.0);
    match ev.kind {
        HistEventKind::Begin => fnv_word(h, 10),
        HistEventKind::Access {
            kind,
            key,
            read_from,
        } => {
            h = fnv_word(h, 11);
            h = fnv_word(h, if kind == OpKind::Write { 1 } else { 0 });
            h = fnv_word(h, key.0);
            match read_from {
                None => fnv_word(h, 0),
                Some(src) => {
                    h = fnv_word(h, 1);
                    fnv_txn(h, src)
                }
            }
        }
        HistEventKind::LocallyCommitted => fnv_word(h, 12),
        HistEventKind::Committed => fnv_word(h, 13),
        HistEventKind::RolledBack => fnv_word(h, 14),
        HistEventKind::Compensated => fnv_word(h, 15),
    }
}

/// What happened in one history event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistEventKind {
    /// Transaction became active at the site.
    Begin,
    /// One read or write access.
    Access {
        /// Read/write classification.
        kind: OpKind,
        /// Item accessed.
        key: Key,
        /// For reads: the transaction whose write produced the value read
        /// (the *reads-from* relation, needed for the Theorem 2 audit).
        read_from: Option<TxnId>,
    },
    /// The site voted to commit and (under O2PC) released the locks: the
    /// transaction is *locally committed* here.
    LocallyCommitted,
    /// Final commit at this site.
    Committed,
    /// Rolled back from the log at this site.
    RolledBack,
    /// A compensating subtransaction completed at this site.
    Compensated,
}

/// One event in a site's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistEvent {
    /// Site at which the event occurred.
    pub site: SiteId,
    /// Serialization-graph node the event belongs to.
    pub txn: TxnId,
    /// Event payload.
    pub kind: HistEventKind,
    /// Virtual time of the event.
    pub time: SimTime,
}

/// A multi-site execution history: per-site ordered event sequences.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<HistEvent>,
}

impl History {
    /// New empty history, pre-sized for a typical engine run (a few
    /// thousand events) so recording never pays the early doubling steps.
    pub fn new() -> Self {
        History {
            events: Vec::with_capacity(1024),
        }
    }

    /// Append an event. Events must be appended in global virtual-time order
    /// per site (the engine guarantees this; a debug assertion checks it).
    pub fn push(&mut self, ev: HistEvent) {
        #[cfg(debug_assertions)]
        if let Some(last) = self.events.iter().rev().find(|e| e.site == ev.site) {
            debug_assert!(
                last.time <= ev.time,
                "per-site history must be time-ordered"
            );
        }
        self.events.push(ev);
    }

    /// Convenience: record an access.
    pub fn access(
        &mut self,
        site: SiteId,
        txn: TxnId,
        kind: OpKind,
        key: Key,
        read_from: Option<TxnId>,
        time: SimTime,
    ) {
        self.push(HistEvent {
            site,
            txn,
            kind: HistEventKind::Access {
                kind,
                key,
                read_from,
            },
            time,
        });
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[HistEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one site, in order.
    pub fn site_events(&self, site: SiteId) -> impl Iterator<Item = &HistEvent> {
        self.events.iter().filter(move |e| e.site == site)
    }

    /// The set of sites appearing in the history, ordered.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut s: Vec<SiteId> = self.events.iter().map(|e| e.site).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// The set of transactions appearing in the history, ordered.
    pub fn txns(&self) -> Vec<TxnId> {
        let mut t: Vec<TxnId> = self.events.iter().map(|e| e.txn).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// For every transaction, the set of sites where it has access events.
    pub fn execution_sites(&self) -> BTreeMap<TxnId, Vec<SiteId>> {
        let mut map: BTreeMap<TxnId, Vec<SiteId>> = BTreeMap::new();
        for e in &self.events {
            if matches!(e.kind, HistEventKind::Access { .. }) {
                let sites = map.entry(e.txn).or_default();
                if !sites.contains(&e.site) {
                    sites.push(e.site);
                }
            }
        }
        map
    }

    /// Merge another history into this one (used when sites record locally
    /// and the engine stitches them together). Events keep per-site order.
    pub fn merge(&mut self, other: History) {
        self.events.extend(other.events);
    }

    /// Order-sensitive FNV-1a digest of the full event stream. Two runs
    /// producing the same digest recorded the same events in the same order
    /// — the determinism fingerprint the golden tests pin down.
    pub fn digest(&self) -> u64 {
        self.events.iter().fold(FNV_OFFSET, fold_event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalTxnId, LocalTxnId};

    fn ev(site: u32, txn: TxnId, t: u64) -> HistEvent {
        HistEvent {
            site: SiteId(site),
            txn,
            kind: HistEventKind::Begin,
            time: SimTime(t),
        }
    }

    #[test]
    fn push_and_query() {
        let mut h = History::new();
        assert!(h.is_empty());
        let t1 = TxnId::Global(GlobalTxnId(1));
        let t2 = TxnId::Local(LocalTxnId {
            site: SiteId(0),
            seq: 0,
        });
        h.push(ev(0, t1, 10));
        h.push(ev(1, t1, 12));
        h.push(ev(0, t2, 15));
        assert_eq!(h.len(), 3);
        assert_eq!(h.sites(), vec![SiteId(0), SiteId(1)]);
        assert_eq!(h.site_events(SiteId(0)).count(), 2);
        assert_eq!(h.txns().len(), 2);
    }

    #[test]
    fn access_records_reads_from() {
        let mut h = History::new();
        let writer = TxnId::Global(GlobalTxnId(1));
        let reader = TxnId::Global(GlobalTxnId(2));
        h.access(SiteId(0), writer, OpKind::Write, Key(5), None, SimTime(1));
        h.access(
            SiteId(0),
            reader,
            OpKind::Read,
            Key(5),
            Some(writer),
            SimTime(2),
        );
        match h.events()[1].kind {
            HistEventKind::Access {
                read_from,
                kind,
                key,
            } => {
                assert_eq!(read_from, Some(writer));
                assert_eq!(kind, OpKind::Read);
                assert_eq!(key, Key(5));
            }
            _ => panic!("expected access"),
        }
    }

    #[test]
    fn execution_sites_only_counts_accesses() {
        let mut h = History::new();
        let t = TxnId::Global(GlobalTxnId(3));
        h.push(ev(0, t, 1)); // Begin: does not count as execution
        h.access(SiteId(1), t, OpKind::Read, Key(0), None, SimTime(2));
        h.access(SiteId(2), t, OpKind::Write, Key(1), None, SimTime(3));
        h.access(SiteId(1), t, OpKind::Write, Key(2), None, SimTime(4));
        let m = h.execution_sites();
        assert_eq!(m[&t], vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let t1 = TxnId::Global(GlobalTxnId(1));
        let t2 = TxnId::Global(GlobalTxnId(2));
        let mut a = History::new();
        a.access(SiteId(0), t1, OpKind::Write, Key(1), None, SimTime(1));
        a.access(SiteId(0), t2, OpKind::Read, Key(1), Some(t1), SimTime(2));
        let mut b = History::new();
        b.access(SiteId(0), t1, OpKind::Write, Key(1), None, SimTime(1));
        b.access(SiteId(0), t2, OpKind::Read, Key(1), Some(t1), SimTime(2));
        assert_eq!(a.digest(), b.digest());
        // Different order (via different sites to satisfy per-site time
        // monotonicity) → different digest.
        let mut c = History::new();
        c.access(SiteId(1), t2, OpKind::Read, Key(1), Some(t1), SimTime(2));
        c.access(SiteId(0), t1, OpKind::Write, Key(1), None, SimTime(1));
        assert_ne!(a.digest(), c.digest());
        // Different content → different digest.
        let mut d = History::new();
        d.access(SiteId(0), t1, OpKind::Write, Key(2), None, SimTime(1));
        d.access(SiteId(0), t2, OpKind::Read, Key(1), Some(t1), SimTime(2));
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn counting_sink_matches_history_digest() {
        let t1 = TxnId::Global(GlobalTxnId(1));
        let mut h = History::new();
        let mut c = CountingSink::new();
        for (sink_ev, time) in [(HistEventKind::Begin, 1), (HistEventKind::Committed, 2)] {
            let ev = HistEvent {
                site: SiteId(0),
                txn: t1,
                kind: sink_ev,
                time: SimTime(time),
            };
            h.record(ev);
            c.record(ev);
        }
        assert_eq!(c.events, h.len() as u64);
        assert_eq!(c.digest(), h.digest());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = History::new();
        let mut b = History::new();
        let t = TxnId::Global(GlobalTxnId(0));
        a.push(ev(0, t, 1));
        b.push(ev(1, t, 2));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    #[cfg(debug_assertions)]
    fn out_of_order_same_site_panics_in_debug() {
        let mut h = History::new();
        let t = TxnId::Global(GlobalTxnId(0));
        h.push(ev(0, t, 10));
        h.push(ev(0, t, 5));
    }
}
