//! Keys and values of the per-site stores.
//!
//! The value domain is a signed 64-bit counter. This is deliberately richer
//! than an opaque blob: the *restricted model* of the paper (§3.1) assumes
//! subtransactions drawn from a repertoire of semantic operations, and the
//! canonical examples (account balances, seat inventories) are counters whose
//! increments commute — exactly the property that makes semantic compensation
//! (`Add(-d)` undoing `Add(d)`) meaningful even after other transactions have
//! observed and modified the item.

use std::fmt;

/// Key of a data item within one site's store.
///
/// Keys are site-local: the pair (`SiteId`, `Key`) names a unique item in the
/// distributed database; there is no replication in the paper's model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Value of a data item: a signed counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub i64);

impl Value {
    /// Zero value.
    pub const ZERO: Value = Value(0);

    /// Saturating addition of a delta.
    #[inline]
    pub fn saturating_add(self, delta: i64) -> Value {
        Value(self.0.saturating_add(delta))
    }

    /// Checked addition of a delta.
    #[inline]
    pub fn checked_add(self, delta: i64) -> Option<Value> {
        self.0.checked_add(delta).map(Value)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_helpers() {
        assert_eq!(Value(5).saturating_add(3), Value(8));
        assert_eq!(Value(i64::MAX).saturating_add(1), Value(i64::MAX));
        assert_eq!(Value(5).checked_add(-10), Some(Value(-5)));
        assert_eq!(Value(i64::MIN).checked_add(-1), None);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Key(12)), "k12");
        assert_eq!(format!("{}", Value(-3)), "-3");
        assert_eq!(Value::from(9), Value(9));
        assert_eq!(Value::default(), Value::ZERO);
    }
}
