//! Deterministic random number generation.
//!
//! A self-contained xoshiro256++ generator seeded via SplitMix64. Having our
//! own implementation (rather than depending on a particular `rand` version's
//! stream) guarantees that recorded experiment outputs stay bit-identical
//! across dependency upgrades — the same discipline FoundationDB-style
//! deterministic simulation testing relies on.

/// Deterministic xoshiro256++ PRNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl DetRng {
    /// Seed the generator. Distinct seeds give decorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent child stream (e.g. one per site) so that adding
    /// consumers to one stream does not perturb another.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform integer in `[0, bound)` (Lemire's method; `bound` must be > 0).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be positive");
        // Widening multiply rejection-free approximation; bias is < 2^-64 per
        // draw which is negligible for simulation workloads.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        let u = 1.0 - self.gen_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Pick a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Floyd's algorithm keeps this O(k) in expectation for k << n.
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.gen_range((j + 1) as u64) as usize;
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }
}

/// Zipf-distributed sampler over `{0, 1, ..., n-1}` with skew `theta`
/// (theta = 0 is uniform; typical hotspot workloads use 0.6–0.99).
///
/// Uses a precomputed inverse CDF table for exact, cheap draws — appropriate
/// because workload key spaces here are small (≤ a few hundred thousand).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor enforces n > 0
    }

    /// Draw a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_decorrelated_and_deterministic() {
        let mut root1 = DetRng::new(7);
        let mut root2 = DetRng::new(7);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = root1.fork(4);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let x = r.gen_range(17);
            assert!(x < 17);
        }
        for _ in 0..1_000 {
            let x = r.gen_range_inclusive(5, 9);
            assert!((5..=9).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut r = DetRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = DetRng::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = DetRng::new(21);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(23);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert_eq!(r.gen_exp(0.0), 0.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = DetRng::new(37);
        for _ in 0..200 {
            let s = r.sample_indices(10, 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4, "indices must be distinct: {s:?}");
            assert!(s.iter().all(|&i| i < 10));
        }
        // Degenerate cases.
        assert!(r.sample_indices(3, 0).is_empty());
        let all = r.sample_indices(3, 3);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn choose_behaviour() {
        let mut r = DetRng::new(41);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        let one = [7u8];
        assert_eq!(r.choose(&one), Some(&7));
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut r = DetRng::new(43);
        let z = Zipf::new(100, 0.99);
        let n = 50_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "rank0={} rank50={}",
            counts[0],
            counts[50]
        );
        // All samples valid ranks.
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut r = DetRng::new(47);
        let z = Zipf::new(10, 0.0);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "rank {i}: {frac}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let mut r = DetRng::new(51);
        let z = Zipf::new(1, 0.9);
        assert_eq!(z.len(), 1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }
}
