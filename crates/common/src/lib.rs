//! # o2pc-common
//!
//! Foundation types shared by every crate in the O2PC reproduction suite:
//!
//! * [`ids`] — identifiers for sites, global transactions, local transactions,
//!   and the unified [`ids::TxnId`] used as a serialization-graph node.
//! * [`ops`] — the operation repertoire (generic reads/writes plus the
//!   *restricted model* semantic operations of the paper's §3.1).
//! * [`value`] — the value domain stored at each site.
//! * [`time`] — virtual time ([`time::SimTime`]) for the deterministic
//!   simulator; all latencies and lock-hold windows are measured in it.
//! * [`rng`] — a self-contained, seedable xoshiro256++ generator so that the
//!   whole system is reproducible bit-for-bit from a seed.
//! * [`stats`] — streaming statistics (Welford mean/variance, log-bucketed
//!   percentile histograms) and named counters used by the experiment harness.
//! * [`pool`] — a deterministic-merge worker pool for the harnesses: jobs
//!   run on N threads, results are consumed in job order, so parallel runs
//!   print byte-identical output to sequential ones.
//! * [`history`] — the recorded execution history consumed by `o2pc-sgraph`.
//! * [`error`] — shared error types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod history;
pub mod ids;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod value;

pub use error::{CommonError, Result};
pub use hash::{FastHashMap, FastHashSet, FxHasher};
pub use history::{CountingSink, HistEvent, HistEventKind, History, HistorySink};
pub use ids::{ExecId, GlobalTxnId, GlobalTxnIdGen, LocalTxnId, SiteId, TxnId};
pub use ops::{AccessMode, Op, OpKind};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, Stats};
pub use time::{Duration, SimTime};
pub use value::{Key, Value};
