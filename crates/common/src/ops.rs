//! The operation repertoire.
//!
//! Two decomposition models coexist, mirroring §3.1 of the paper:
//!
//! * **Generic model** — arbitrary [`Op::Read`] / [`Op::Write`] sequences; a
//!   write's compensation is the restoration of its before-image.
//! * **Restricted model** — semantically coherent operations with natural
//!   inverses: [`Op::Add`] (compensated by `Add(-d)`), [`Op::Insert`] /
//!   [`Op::Delete`] (compensating each other), and [`Op::Reserve`] /
//!   [`Op::Release`] (bounded inventory decrement/increment; `Reserve` on an
//!   exhausted item *fails*, which is the organic cause for a site voting to
//!   abort a global transaction).

use crate::value::{Key, Value};
use std::fmt;

/// Lock mode an operation requires on its item.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    /// Shared (read) access.
    Read,
    /// Exclusive (write) access.
    Write,
}

impl AccessMode {
    /// Do two accesses on the same item conflict (at least one exclusive)?
    #[inline]
    pub fn conflicts_with(self, other: AccessMode) -> bool {
        !(self == AccessMode::Read && other == AccessMode::Read)
    }
}

/// Coarse classification of an operation, used by history recording and the
/// serialization-graph builder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Pure read.
    Read,
    /// Any state-mutating operation.
    Write,
}

/// One operation against a single data item at a single site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read the item's current value.
    Read(Key),
    /// Overwrite the item with an absolute value (generic model).
    Write(Key, Value),
    /// Add a signed delta to the item (restricted model, commutative).
    Add(Key, i64),
    /// Create the item with an initial value; fails if it already exists.
    Insert(Key, Value),
    /// Remove the item; fails if absent.
    Delete(Key),
    /// Decrement a non-negative inventory item by `n`; **fails** if fewer
    /// than `n` units remain. Failure aborts the surrounding (sub)transaction.
    Reserve(Key, u32),
    /// Return `n` units to an inventory item (inverse of [`Op::Reserve`]).
    Release(Key, u32),
}

impl Op {
    /// The item this operation touches.
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            Op::Read(k)
            | Op::Write(k, _)
            | Op::Add(k, _)
            | Op::Insert(k, _)
            | Op::Delete(k)
            | Op::Reserve(k, _)
            | Op::Release(k, _) => k,
        }
    }

    /// The lock mode the operation needs.
    #[inline]
    pub fn access_mode(&self) -> AccessMode {
        match self {
            Op::Read(_) => AccessMode::Read,
            _ => AccessMode::Write,
        }
    }

    /// Read/write classification for conflict derivation.
    #[inline]
    pub fn kind(&self) -> OpKind {
        match self.access_mode() {
            AccessMode::Read => OpKind::Read,
            AccessMode::Write => OpKind::Write,
        }
    }

    /// Does the operation belong to the restricted (semantic) repertoire,
    /// i.e. does it have a registered inverse independent of before-images?
    #[inline]
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            Op::Add(..) | Op::Insert(..) | Op::Delete(..) | Op::Reserve(..) | Op::Release(..)
        )
    }

    /// Can the operation fail for semantic reasons (not just lock conflicts)?
    #[inline]
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Op::Reserve(..) | Op::Insert(..) | Op::Delete(..) | Op::Add(..)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(k) => write!(f, "r[{k}]"),
            Op::Write(k, v) => write!(f, "w[{k}={v}]"),
            Op::Add(k, d) => write!(f, "add[{k}{d:+}]"),
            Op::Insert(k, v) => write!(f, "ins[{k}={v}]"),
            Op::Delete(k) => write!(f, "del[{k}]"),
            Op::Reserve(k, n) => write!(f, "rsv[{k}x{n}]"),
            Op::Release(k, n) => write!(f, "rel[{k}x{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert_eq!(Op::Read(Key(1)).access_mode(), AccessMode::Read);
        for op in [
            Op::Write(Key(1), Value(2)),
            Op::Add(Key(1), -4),
            Op::Insert(Key(1), Value(0)),
            Op::Delete(Key(1)),
            Op::Reserve(Key(1), 2),
            Op::Release(Key(1), 2),
        ] {
            assert_eq!(op.access_mode(), AccessMode::Write, "{op}");
            assert_eq!(op.kind(), OpKind::Write);
        }
        assert_eq!(Op::Read(Key(1)).kind(), OpKind::Read);
    }

    #[test]
    fn conflict_matrix() {
        use AccessMode::*;
        assert!(!Read.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
    }

    #[test]
    fn semantic_classification() {
        assert!(!Op::Read(Key(0)).is_semantic());
        assert!(!Op::Write(Key(0), Value(1)).is_semantic());
        assert!(Op::Add(Key(0), 1).is_semantic());
        assert!(Op::Reserve(Key(0), 1).is_semantic());
        assert!(Op::Reserve(Key(0), 1).is_conditional());
        assert!(!Op::Write(Key(0), Value(1)).is_conditional());
    }

    #[test]
    fn keys_and_display() {
        assert_eq!(Op::Add(Key(9), 5).key(), Key(9));
        assert_eq!(format!("{}", Op::Add(Key(9), 5)), "add[k9+5]");
        assert_eq!(format!("{}", Op::Add(Key(9), -5)), "add[k9-5]");
        assert_eq!(format!("{}", Op::Reserve(Key(2), 3)), "rsv[k2x3]");
    }
}
