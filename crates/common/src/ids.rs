//! Identifiers for sites and transactions.
//!
//! The paper distinguishes four kinds of transactional entities (§3.1, §3.2):
//!
//! * a **global transaction** `T_i` spanning two or more sites,
//! * its **local subtransactions** `T_ij` (one per site `S_j`),
//! * the **compensating transaction** `CT_i` with subtransactions `CT_ij`,
//! * independent **local transactions** `L`.
//!
//! Serialization graphs are drawn over `T_i`, `CT_i` and `L` nodes — subtxns
//! are folded into their parent — so [`TxnId`] carries exactly those three
//! variants. Per-site executors additionally need a handle for *which body of
//! work at this site* holds locks; that is [`ExecId`].

use std::fmt;

/// Identifier of a database site (one autonomous local DBMS).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Index usable for dense per-site arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a global (multi-site) transaction `T_i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalTxnId(pub u64);

impl fmt::Debug for GlobalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for GlobalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of an independent local transaction at one site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalTxnId {
    /// Site the transaction runs at.
    pub site: SiteId,
    /// Per-site sequence number.
    pub seq: u64,
}

impl fmt::Debug for LocalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}.{}", self.site.0, self.seq)
    }
}

impl fmt::Display for LocalTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A node of the (extended) serialization graph: a regular global transaction
/// `T_i`, its compensating transaction `CT_i`, or a local transaction.
///
/// Standard log roll-back of a subtransaction at a site that voted *abort* is
/// modelled, per the paper, "as a special case of a compensating transaction",
/// so both actual compensation and automatic roll-back appear under
/// [`TxnId::Compensation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnId {
    /// A regular global transaction `T_i`.
    Global(GlobalTxnId),
    /// The compensating transaction `CT_i` for global transaction `T_i`.
    Compensation(GlobalTxnId),
    /// An independent local transaction.
    Local(LocalTxnId),
}

impl TxnId {
    /// Is this a regular (non-compensating) *global* transaction?
    #[inline]
    pub fn is_regular_global(self) -> bool {
        matches!(self, TxnId::Global(_))
    }

    /// Is this a compensating transaction (including modelled roll-backs)?
    #[inline]
    pub fn is_compensation(self) -> bool {
        matches!(self, TxnId::Compensation(_))
    }

    /// Is this an independent local transaction?
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, TxnId::Local(_))
    }

    /// The global transaction this node concerns, if any (`T_i` for both
    /// `Global(i)` and `Compensation(i)`).
    #[inline]
    pub fn global_id(self) -> Option<GlobalTxnId> {
        match self {
            TxnId::Global(g) | TxnId::Compensation(g) => Some(g),
            TxnId::Local(_) => None,
        }
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnId::Global(g) => write!(f, "{g}"),
            TxnId::Compensation(g) => write!(f, "CT{}", g.0),
            TxnId::Local(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<GlobalTxnId> for TxnId {
    fn from(g: GlobalTxnId) -> Self {
        TxnId::Global(g)
    }
}

impl From<LocalTxnId> for TxnId {
    fn from(l: LocalTxnId) -> Self {
        TxnId::Local(l)
    }
}

/// Handle for one lock-holding execution at one site.
///
/// At a single site, the entities that acquire locks are: a subtransaction
/// `T_ij`, a compensating subtransaction `CT_ij`, or a local transaction.
/// With respect to locking, the paper treats `CT_ij` "as local transactions
/// rather than as subtransactions of global transactions" (§3.2) — i.e. each
/// follows strict 2PL *on its own* — which this handle makes structural.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ExecId {
    /// Subtransaction `T_ij` of global transaction `T_i` (site implied by context).
    Sub(GlobalTxnId),
    /// Compensating subtransaction `CT_ij`.
    CompSub(GlobalTxnId),
    /// Independent local transaction.
    Local(LocalTxnId),
}

impl ExecId {
    /// The SG node this execution contributes conflicts to.
    #[inline]
    pub fn txn_id(self) -> TxnId {
        match self {
            ExecId::Sub(g) => TxnId::Global(g),
            ExecId::CompSub(g) => TxnId::Compensation(g),
            ExecId::Local(l) => TxnId::Local(l),
        }
    }

    /// Is this execution part of a regular global transaction?
    #[inline]
    pub fn is_sub(self) -> bool {
        matches!(self, ExecId::Sub(_))
    }

    /// Is this a compensating subtransaction?
    #[inline]
    pub fn is_comp(self) -> bool {
        matches!(self, ExecId::CompSub(_))
    }
}

impl fmt::Display for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecId::Sub(g) => write!(f, "sub({g})"),
            ExecId::CompSub(g) => write!(f, "csub({g})"),
            ExecId::Local(l) => write!(f, "{l}"),
        }
    }
}

/// Monotonic generator for [`GlobalTxnId`]s.
#[derive(Debug, Default)]
pub struct GlobalTxnIdGen {
    next: u64,
}

impl GlobalTxnIdGen {
    /// Create a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id.
    pub fn next_id(&mut self) -> GlobalTxnId {
        let id = GlobalTxnId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_classification() {
        let g = GlobalTxnId(7);
        assert!(TxnId::Global(g).is_regular_global());
        assert!(!TxnId::Global(g).is_compensation());
        assert!(TxnId::Compensation(g).is_compensation());
        assert!(!TxnId::Compensation(g).is_regular_global());
        let l = LocalTxnId {
            site: SiteId(1),
            seq: 3,
        };
        assert!(TxnId::Local(l).is_local());
        assert_eq!(TxnId::Local(l).global_id(), None);
        assert_eq!(TxnId::Global(g).global_id(), Some(g));
        assert_eq!(TxnId::Compensation(g).global_id(), Some(g));
    }

    #[test]
    fn exec_id_maps_to_sg_node() {
        let g = GlobalTxnId(2);
        assert_eq!(ExecId::Sub(g).txn_id(), TxnId::Global(g));
        assert_eq!(ExecId::CompSub(g).txn_id(), TxnId::Compensation(g));
        let l = LocalTxnId {
            site: SiteId(0),
            seq: 1,
        };
        assert_eq!(ExecId::Local(l).txn_id(), TxnId::Local(l));
        assert!(ExecId::Sub(g).is_sub());
        assert!(ExecId::CompSub(g).is_comp());
        assert!(!ExecId::Local(l).is_sub());
    }

    #[test]
    fn display_formats() {
        let g = GlobalTxnId(4);
        assert_eq!(format!("{}", TxnId::Global(g)), "T4");
        assert_eq!(format!("{}", TxnId::Compensation(g)), "CT4");
        let l = LocalTxnId {
            site: SiteId(2),
            seq: 9,
        };
        assert_eq!(format!("{}", TxnId::Local(l)), "L2.9");
        assert_eq!(format!("{}", SiteId(3)), "S3");
    }

    #[test]
    fn id_generator_is_monotonic() {
        let mut g = GlobalTxnIdGen::new();
        let a = g.next_id();
        let b = g.next_id();
        assert!(a < b);
        assert_eq!(a, GlobalTxnId(0));
        assert_eq!(b, GlobalTxnId(1));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = [
            TxnId::Local(LocalTxnId {
                site: SiteId(1),
                seq: 0,
            }),
            TxnId::Global(GlobalTxnId(1)),
            TxnId::Compensation(GlobalTxnId(0)),
            TxnId::Global(GlobalTxnId(0)),
        ];
        v.sort();
        // Globals sort before compensations before locals (enum order).
        assert_eq!(v[0], TxnId::Global(GlobalTxnId(0)));
        assert_eq!(v[1], TxnId::Global(GlobalTxnId(1)));
        assert_eq!(v[2], TxnId::Compensation(GlobalTxnId(0)));
    }
}
