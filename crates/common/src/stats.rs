//! Streaming statistics and metric registries for the experiment harness.
//!
//! Three primitives cover everything the benches report:
//!
//! * [`Stats`] — count / mean / variance (Welford) / min / max,
//! * [`Histogram`] — log-bucketed values with percentile estimation,
//! * [`Counter`] — a named monotonic counter.

use std::collections::BTreeMap;
use std::fmt;

/// Streaming scalar statistics (Welford's online algorithm).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Stats {
    /// New empty accumulator.
    pub fn new() -> Self {
        Stats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Stats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Log-bucketed histogram of non-negative values with percentile estimation.
///
/// Buckets are geometric with ~4.6% relative width (64 sub-buckets per
/// power of two over `u64`), giving percentile error well under the noise of
/// any simulated experiment while staying allocation-free after construction.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    stats: Stats,
}

const SUB_BITS: u32 = 6; // 64 sub-buckets per octave
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + (1 << SUB_BITS);

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
        (octave << SUB_BITS) + sub
    }
}

#[inline]
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        idx as u64
    } else {
        let octave = (idx >> SUB_BITS) as u32;
        let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
        ((1 << SUB_BITS) | sub) << (octave - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            stats: Stats::new(),
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.stats.record(v as f64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Maximum recorded value (exact).
    pub fn max(&self) -> u64 {
        self.stats.max() as u64
    }

    /// Approximate `q`-quantile (`q` in [0, 1]); returns the lower bound of
    /// the bucket containing the quantile. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_lower_bound(i);
            }
        }
        self.max()
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand (tail latency under open-loop load).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.stats.merge(&other.stats);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.p50(),
            self.p99(),
            self.max()
        )
    }
}

/// A named monotonic counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A string-keyed registry of counters, used for ad-hoc experiment metrics
/// (message type counts, rejection reasons, ...).
#[derive(Clone, Debug, Default)]
pub struct CounterSet {
    counters: BTreeMap<String, u64>,
}

impl CounterSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merge another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let mut s = Stats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        for x in [2.0, 4.0, 6.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Stats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Stats::new();
        let mut b = Stats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging empty is a no-op; merging into empty copies.
        let mut e = Stats::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
        whole.merge(&Stats::new());
        assert_eq!(whole.count(), xs.len() as u64);
    }

    #[test]
    fn histogram_buckets_monotone() {
        // bucket_index must be monotone non-decreasing in its argument.
        let mut last = 0;
        for v in (0..4096).chain([1 << 20, (1 << 20) + 1, u64::MAX / 2, u64::MAX]) {
            let b = bucket_index(v);
            assert!(b >= last || v < 4096, "index regressed at {v}");
            last = b;
            assert!(
                bucket_lower_bound(b) <= v,
                "lower bound exceeds value at {v}"
            );
        }
        // Small values are exact.
        for v in 0..64 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50();
        assert!((450..=550).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((950..=1000).contains(&p99), "p99={p99}");
        let p999 = h.p999();
        assert!(p999 >= p99, "p999={p999} below p99={p99}");
        assert!(p999 <= 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 0.01);
        // Quantile clamping.
        assert!(h.quantile(-1.0) <= h.quantile(2.0));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            a.record(v);
            whole.record(v);
        }
        for v in 500..1000u64 {
            b.record(v * 3);
            whole.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn counters() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let mut set = CounterSet::new();
        set.inc("msg.vote_req");
        set.add("msg.vote_req", 2);
        set.inc("msg.decision");
        assert_eq!(set.get("msg.vote_req"), 3);
        assert_eq!(set.get("missing"), 0);
        let mut other = CounterSet::new();
        other.add("msg.decision", 5);
        set.merge(&other);
        assert_eq!(set.get("msg.decision"), 6);
        let names: Vec<_> = set.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(names, vec!["msg.decision", "msg.vote_req"]);
    }
}
