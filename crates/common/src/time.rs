//! Virtual time for the deterministic simulator.
//!
//! All protocol-visible delays (network latency, operation service time,
//! lock-hold windows, blocking intervals) are measured on this clock, never on
//! wall-clock time, so every experiment is exactly reproducible from a seed.
//! The unit is the microsecond.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since origin.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Span in microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply the span by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::millis(2);
        assert_eq!(t.micros(), 2_000);
        let t2 = t + Duration::micros(500);
        assert_eq!(t2 - t, Duration::micros(500));
        assert_eq!(t - t2, Duration::ZERO, "saturating subtraction");
        assert_eq!(t2.since(t), Duration(500));
        let mut acc = Duration::ZERO;
        acc += Duration::secs(1);
        assert_eq!(acc.as_secs_f64(), 1.0);
        assert_eq!(Duration::millis(3).saturating_mul(4), Duration::millis(12));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Duration::secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::millis(1).as_millis_f64(), 1.0);
        assert_eq!(SimTime(1_500).as_millis_f64(), 1.5);
        assert_eq!(format!("{}", SimTime(2_500)), "2.500ms");
        assert_eq!(format!("{:?}", Duration(10)), "10us");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        let mut tm = SimTime::ZERO;
        tm += Duration::micros(7);
        assert_eq!(tm, SimTime(7));
    }
}
