//! Shared error types.

use crate::ids::ExecId;
use crate::value::Key;
use std::fmt;

/// Errors shared across the suite's crates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommonError {
    /// An operation referenced an item that does not exist.
    KeyNotFound(Key),
    /// An insert targeted an item that already exists.
    KeyExists(Key),
    /// A `Reserve` could not be satisfied (insufficient units) or an `Add`
    /// would violate a domain constraint.
    ConstraintViolated {
        /// Item involved.
        key: Key,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The referenced transaction/execution is not active at this site.
    UnknownExecution(ExecId),
    /// The execution is in a state where the requested transition is illegal.
    IllegalTransition {
        /// Execution involved.
        exec: ExecId,
        /// What was attempted.
        attempted: &'static str,
    },
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::KeyNotFound(k) => write!(f, "key {k} not found"),
            CommonError::KeyExists(k) => write!(f, "key {k} already exists"),
            CommonError::ConstraintViolated { key, reason } => {
                write!(f, "constraint violated on {key}: {reason}")
            }
            CommonError::UnknownExecution(e) => write!(f, "unknown execution {e}"),
            CommonError::IllegalTransition { exec, attempted } => {
                write!(f, "illegal transition for {exec}: {attempted}")
            }
        }
    }
}

impl std::error::Error for CommonError {}

/// Result alias over [`CommonError`].
pub type Result<T> = std::result::Result<T, CommonError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalTxnId;

    #[test]
    fn display_messages() {
        assert_eq!(
            CommonError::KeyNotFound(Key(3)).to_string(),
            "key k3 not found"
        );
        assert_eq!(
            CommonError::KeyExists(Key(1)).to_string(),
            "key k1 already exists"
        );
        let e = CommonError::ConstraintViolated {
            key: Key(2),
            reason: "sold out",
        };
        assert_eq!(e.to_string(), "constraint violated on k2: sold out");
        let e = CommonError::UnknownExecution(ExecId::Sub(GlobalTxnId(4)));
        assert!(e.to_string().contains("sub(T4)"));
        let e = CommonError::IllegalTransition {
            exec: ExecId::CompSub(GlobalTxnId(4)),
            attempted: "vote",
        };
        assert!(e.to_string().contains("vote"));
    }
}
