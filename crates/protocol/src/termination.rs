//! The cooperative termination protocol for blocked 2PC participants.
//!
//! When a prepared participant times out waiting for the DECISION it may ask
//! its peers (Bernstein–Hadzilacos–Goodman §7.4):
//!
//! * if any peer has already received (or decided) COMMIT/ABORT, adopt it;
//! * if some peer has **not yet voted yes**, the coordinator cannot have
//!   decided commit — everyone may safely abort;
//! * if every reachable peer is itself prepared-and-uncertain, the
//!   participant **remains blocked**.
//!
//! That last case is the point: cooperative termination reduces the
//! *probability* of blocking, but cannot eliminate it — the impossibility
//! the paper cites ("it is impossible to have a non-blocking commit protocol
//! that is immune to both site and link failures") and the reason O2PC
//! abandons blocking avoidance in favour of semantic atomicity. The unit
//! tests pin down exactly which peer-state combinations unblock.

use o2pc_common::{GlobalTxnId, SiteId};
use std::collections::BTreeMap;

pub use o2pc_site::PeerState;

/// Outcome of a termination round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationOutcome {
    /// The decision was learned: commit.
    Commit,
    /// The decision was learned (or safely inferred): abort.
    Abort,
    /// Every reachable peer is uncertain too: stay blocked, retry later.
    StillBlocked,
}

/// A participant-side termination round for one transaction.
#[derive(Clone, Debug)]
pub struct TerminationRound {
    txn: GlobalTxnId,
    peers: Vec<SiteId>,
    answers: BTreeMap<SiteId, PeerState>,
}

impl TerminationRound {
    /// Start a round: `peers` are the other participants (from the VOTE-REQ
    /// payload — participant lists piggy-back on standard 2PC messages).
    pub fn new(txn: GlobalTxnId, peers: Vec<SiteId>) -> Self {
        TerminationRound {
            txn,
            peers,
            answers: BTreeMap::new(),
        }
    }

    /// The transaction being terminated.
    pub fn txn(&self) -> GlobalTxnId {
        self.txn
    }

    /// Record a peer's answer. Returns the resolution as soon as one is
    /// implied; `None` while more answers could still change the outcome.
    pub fn on_answer(&mut self, from: SiteId, state: PeerState) -> Option<TerminationOutcome> {
        debug_assert!(self.peers.contains(&from), "answer from non-peer {from}");
        self.answers.insert(from, state);
        match state {
            PeerState::KnowsCommit => return Some(TerminationOutcome::Commit),
            PeerState::KnowsAbort => return Some(TerminationOutcome::Abort),
            // A peer that never prepared proves the decision cannot be
            // commit: abort immediately and unilaterally.
            PeerState::NotPrepared => return Some(TerminationOutcome::Abort),
            PeerState::PreparedUncertain | PeerState::Unreachable => {}
        }
        if self.answers.len() == self.peers.len() {
            Some(self.conclude())
        } else {
            None
        }
    }

    /// Conclude with the answers collected so far (e.g. on a round timeout).
    pub fn conclude(&self) -> TerminationOutcome {
        // At this point no answer was decisive: all reachable peers are
        // prepared-and-uncertain (or unreachable). Blocked.
        TerminationOutcome::StillBlocked
    }

    /// Peers that have not answered yet.
    pub fn outstanding(&self) -> Vec<SiteId> {
        self.peers
            .iter()
            .copied()
            .filter(|p| !self.answers.contains_key(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(n: u32) -> TerminationRound {
        TerminationRound::new(GlobalTxnId(1), (0..n).map(SiteId).collect())
    }

    #[test]
    fn commit_knowledge_resolves_immediately() {
        let mut r = round(3);
        assert_eq!(r.on_answer(SiteId(0), PeerState::PreparedUncertain), None);
        assert_eq!(
            r.on_answer(SiteId(1), PeerState::KnowsCommit),
            Some(TerminationOutcome::Commit)
        );
    }

    #[test]
    fn abort_knowledge_resolves_immediately() {
        let mut r = round(2);
        assert_eq!(
            r.on_answer(SiteId(0), PeerState::KnowsAbort),
            Some(TerminationOutcome::Abort)
        );
    }

    #[test]
    fn unprepared_peer_proves_abort() {
        let mut r = round(3);
        assert_eq!(
            r.on_answer(SiteId(2), PeerState::NotPrepared),
            Some(TerminationOutcome::Abort)
        );
    }

    #[test]
    fn all_uncertain_stays_blocked() {
        let mut r = round(3);
        assert_eq!(r.on_answer(SiteId(0), PeerState::PreparedUncertain), None);
        assert_eq!(r.on_answer(SiteId(1), PeerState::PreparedUncertain), None);
        assert_eq!(
            r.on_answer(SiteId(2), PeerState::PreparedUncertain),
            Some(TerminationOutcome::StillBlocked),
            "the fundamental blocking case"
        );
    }

    #[test]
    fn unreachable_peers_do_not_unblock() {
        let mut r = round(2);
        assert_eq!(r.on_answer(SiteId(0), PeerState::Unreachable), None);
        assert_eq!(
            r.on_answer(SiteId(1), PeerState::Unreachable),
            Some(TerminationOutcome::StillBlocked)
        );
    }

    #[test]
    fn early_conclude_on_partial_answers() {
        let mut r = round(3);
        r.on_answer(SiteId(0), PeerState::PreparedUncertain);
        assert_eq!(r.conclude(), TerminationOutcome::StillBlocked);
        assert_eq!(r.outstanding(), vec![SiteId(1), SiteId(2)]);
    }
}
