//! The per-transaction 2PC coordinator state machine.
//!
//! Message pattern (identical for 2PC and O2PC — the paper's compatibility
//! claim): after all subtransactions ack their operations, the coordinator
//! sends VOTE-REQ to every participant; participants reply VOTE; unanimous
//! yes ⇒ COMMIT, otherwise ABORT; the decision is **logged before any
//! DECISION message leaves** (presumed abort discipline: a recovering
//! coordinator resends a logged decision and presumes abort for anything
//! undecided); participants acknowledge the decision.

use o2pc_common::{GlobalTxnId, SiteId};
use o2pc_site::Vote;
use std::collections::{BTreeMap, BTreeSet};

/// Coordinator phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordState {
    /// Waiting for every subtransaction to ack its operations.
    CollectingAcks,
    /// VOTE-REQ sent; collecting votes.
    Voting,
    /// Decision logged and sent; collecting decision acks.
    Decided(bool),
    /// All decision acks received; protocol complete.
    Done(bool),
}

/// An instruction for the host (engine or transport driver).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordAction {
    /// Send VOTE-REQ to each listed participant.
    SendVoteReq(Vec<SiteId>),
    /// Decision reached (`true` = commit): it is now logged; send DECISION
    /// to each listed participant.
    SendDecision(bool, Vec<SiteId>),
    /// Protocol complete (`true` = committed).
    Complete(bool),
}

/// The coordinator of one global transaction.
#[derive(Clone, Debug)]
pub struct TwoPhaseCoordinator {
    txn: GlobalTxnId,
    participants: Vec<SiteId>,
    state: CoordState,
    op_acks: BTreeSet<SiteId>,
    /// A subtransaction that failed during execution forces an abort
    /// decision without waiting for votes from everyone.
    failed_ack: bool,
    votes: BTreeMap<SiteId, Vote>,
    decision_acks: BTreeSet<SiteId>,
}

impl TwoPhaseCoordinator {
    /// New coordinator for `txn` over the given participant sites.
    pub fn new(txn: GlobalTxnId, participants: Vec<SiteId>) -> Self {
        assert!(
            !participants.is_empty(),
            "a global transaction needs participants"
        );
        TwoPhaseCoordinator {
            txn,
            participants,
            state: CoordState::CollectingAcks,
            op_acks: BTreeSet::new(),
            failed_ack: false,
            votes: BTreeMap::new(),
            decision_acks: BTreeSet::new(),
        }
    }

    /// The transaction being coordinated.
    pub fn txn(&self) -> GlobalTxnId {
        self.txn
    }

    /// Participant sites.
    pub fn participants(&self) -> &[SiteId] {
        &self.participants
    }

    /// Current phase.
    pub fn state(&self) -> CoordState {
        self.state
    }

    /// The logged decision, if one has been taken.
    pub fn decision(&self) -> Option<bool> {
        match self.state {
            CoordState::Decided(d) | CoordState::Done(d) => Some(d),
            _ => None,
        }
    }

    /// A subtransaction acked (`ok = false` reports an execution failure).
    /// Returns the next action, if the ack completes a phase. Acks arriving
    /// after a timeout already moved the protocol on are ignored.
    pub fn on_subtxn_ack(&mut self, site: SiteId, ok: bool) -> Option<CoordAction> {
        if self.state != CoordState::CollectingAcks {
            return None; // late ack (e.g. a timeout already presumed abort)
        }
        debug_assert!(self.participants.contains(&site));
        self.op_acks.insert(site);
        if !ok {
            self.failed_ack = true;
        }
        if self.op_acks.len() == self.participants.len() {
            if self.failed_ack {
                // No point soliciting votes: decide abort now. VOTE-REQ is
                // still sent so participants learn the transaction is
                // terminating — exactly the standard message pattern (the
                // votes will be ignored).
                self.state = CoordState::Voting;
            } else {
                self.state = CoordState::Voting;
            }
            return Some(CoordAction::SendVoteReq(self.participants.clone()));
        }
        None
    }

    /// A participant voted. Unanimous yes ⇒ commit; the first no ⇒ abort.
    pub fn on_vote(&mut self, site: SiteId, vote: Vote) -> Option<CoordAction> {
        if !matches!(self.state, CoordState::Voting) {
            // Late vote after an early abort decision: ignore.
            return None;
        }
        debug_assert!(self.participants.contains(&site));
        self.votes.insert(site, vote);
        if vote == Vote::No || self.failed_ack {
            return Some(self.decide(false));
        }
        if self.votes.len() == self.participants.len() {
            let commit = self.votes.values().all(|&v| v == Vote::Yes);
            return Some(self.decide(commit));
        }
        None
    }

    /// Vote-collection timeout: presumed abort.
    pub fn on_vote_timeout(&mut self) -> Option<CoordAction> {
        if matches!(self.state, CoordState::Voting) {
            Some(self.decide(false))
        } else {
            None
        }
    }

    /// General progress timeout: if no decision has been reached (stuck in
    /// ack collection — e.g. a participant site is down — or in voting),
    /// presume abort and notify everyone.
    pub fn on_timeout(&mut self) -> Option<CoordAction> {
        match self.state {
            CoordState::CollectingAcks | CoordState::Voting => Some(self.decide(false)),
            _ => None,
        }
    }

    fn decide(&mut self, commit: bool) -> CoordAction {
        self.state = CoordState::Decided(commit);
        CoordAction::SendDecision(commit, self.participants.clone())
    }

    /// A participant acknowledged the decision.
    pub fn on_decision_ack(&mut self, site: SiteId) -> Option<CoordAction> {
        let CoordState::Decided(commit) = self.state else {
            return None;
        };
        debug_assert!(self.participants.contains(&site));
        self.decision_acks.insert(site);
        if self.decision_acks.len() == self.participants.len() {
            self.state = CoordState::Done(commit);
            return Some(CoordAction::Complete(commit));
        }
        None
    }

    /// What an idle-timer retransmission should resend right now, if
    /// anything: the VOTE-REQ to participants whose vote is still missing,
    /// or the logged decision to participants that have not acked it.
    /// `None` means the protocol is not waiting on any message (still
    /// collecting subtransaction acks, or already `Done`), so the
    /// retransmission timer chain can stop.
    pub fn retransmit(&self) -> Option<CoordAction> {
        match self.state {
            CoordState::Voting => {
                let missing: Vec<SiteId> = self
                    .participants
                    .iter()
                    .copied()
                    .filter(|s| !self.votes.contains_key(s))
                    .collect();
                if missing.is_empty() {
                    None
                } else {
                    Some(CoordAction::SendVoteReq(missing))
                }
            }
            CoordState::Decided(commit) => {
                let missing: Vec<SiteId> = self
                    .participants
                    .iter()
                    .copied()
                    .filter(|s| !self.decision_acks.contains(s))
                    .collect();
                if missing.is_empty() {
                    None
                } else {
                    Some(CoordAction::SendDecision(commit, missing))
                }
            }
            CoordState::CollectingAcks | CoordState::Done(_) => None,
        }
    }

    /// Coordinator recovery: what must be resent / presumed after a crash.
    /// A logged decision is resent to participants that have not acked;
    /// an undecided transaction is presumed aborted.
    pub fn recover(&mut self) -> Option<CoordAction> {
        match self.state {
            CoordState::Decided(commit) => {
                let missing: Vec<SiteId> = self
                    .participants
                    .iter()
                    .copied()
                    .filter(|s| !self.decision_acks.contains(s))
                    .collect();
                if missing.is_empty() {
                    self.state = CoordState::Done(commit);
                    Some(CoordAction::Complete(commit))
                } else {
                    Some(CoordAction::SendDecision(commit, missing))
                }
            }
            CoordState::CollectingAcks | CoordState::Voting => {
                // Presumed abort.
                Some(self.decide(false))
            }
            CoordState::Done(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GlobalTxnId {
        GlobalTxnId(1)
    }

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn happy_path_commit() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(3));
        assert_eq!(c.state(), CoordState::CollectingAcks);
        assert_eq!(c.on_subtxn_ack(SiteId(0), true), None);
        assert_eq!(c.on_subtxn_ack(SiteId(1), true), None);
        let a = c.on_subtxn_ack(SiteId(2), true).unwrap();
        assert_eq!(a, CoordAction::SendVoteReq(sites(3)));
        assert_eq!(c.on_vote(SiteId(0), Vote::Yes), None);
        assert_eq!(c.on_vote(SiteId(1), Vote::Yes), None);
        let a = c.on_vote(SiteId(2), Vote::Yes).unwrap();
        assert_eq!(a, CoordAction::SendDecision(true, sites(3)));
        assert_eq!(c.decision(), Some(true));
        assert_eq!(c.on_decision_ack(SiteId(0)), None);
        assert_eq!(c.on_decision_ack(SiteId(1)), None);
        assert_eq!(
            c.on_decision_ack(SiteId(2)),
            Some(CoordAction::Complete(true))
        );
        assert_eq!(c.state(), CoordState::Done(true));
    }

    #[test]
    fn single_no_vote_aborts_immediately() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(3));
        for s in sites(3) {
            c.on_subtxn_ack(s, true);
        }
        assert_eq!(c.on_vote(SiteId(0), Vote::Yes), None);
        let a = c.on_vote(SiteId(1), Vote::No).unwrap();
        assert_eq!(a, CoordAction::SendDecision(false, sites(3)));
        // A late yes from site 2 is ignored.
        assert_eq!(c.on_vote(SiteId(2), Vote::Yes), None);
        assert_eq!(c.decision(), Some(false));
    }

    #[test]
    fn failed_subtxn_ack_forces_abort() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(2));
        c.on_subtxn_ack(SiteId(0), true);
        let a = c.on_subtxn_ack(SiteId(1), false).unwrap();
        assert_eq!(a, CoordAction::SendVoteReq(sites(2)), "pattern preserved");
        // First vote (whatever it is) triggers the abort decision.
        let a = c.on_vote(SiteId(0), Vote::Yes).unwrap();
        assert_eq!(a, CoordAction::SendDecision(false, sites(2)));
    }

    #[test]
    fn vote_timeout_presumes_abort() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(2));
        for s in sites(2) {
            c.on_subtxn_ack(s, true);
        }
        c.on_vote(SiteId(0), Vote::Yes);
        let a = c.on_vote_timeout().unwrap();
        assert_eq!(a, CoordAction::SendDecision(false, sites(2)));
        assert_eq!(c.on_vote_timeout(), None, "idempotent");
    }

    #[test]
    fn recovery_resends_logged_decision_to_missing_only() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(3));
        for s in sites(3) {
            c.on_subtxn_ack(s, true);
        }
        for s in sites(3) {
            c.on_vote(s, Vote::Yes);
        }
        c.on_decision_ack(SiteId(0));
        // Crash here; recovery resends to 1 and 2 only.
        let a = c.recover().unwrap();
        assert_eq!(
            a,
            CoordAction::SendDecision(true, vec![SiteId(1), SiteId(2)])
        );
        c.on_decision_ack(SiteId(1));
        assert_eq!(
            c.on_decision_ack(SiteId(2)),
            Some(CoordAction::Complete(true))
        );
    }

    #[test]
    fn recovery_before_decision_presumes_abort() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(2));
        c.on_subtxn_ack(SiteId(0), true);
        let a = c.recover().unwrap();
        assert_eq!(a, CoordAction::SendDecision(false, sites(2)));
        assert_eq!(c.decision(), Some(false));
    }

    #[test]
    fn recovery_when_done_is_noop() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(1));
        c.on_subtxn_ack(SiteId(0), true);
        c.on_vote(SiteId(0), Vote::Yes);
        c.on_decision_ack(SiteId(0));
        assert_eq!(c.recover(), None);
    }

    #[test]
    fn recovery_with_all_acks_completes() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(1));
        c.on_subtxn_ack(SiteId(0), true);
        c.on_vote(SiteId(0), Vote::Yes);
        // Ack arrives, then crash before Complete was processed: recovery
        // must complete, not resend.
        c.on_decision_ack(SiteId(0));
        let mut c2 = c.clone();
        c2.state = CoordState::Decided(true);
        assert_eq!(c2.recover(), Some(CoordAction::Complete(true)));
    }

    #[test]
    #[should_panic(expected = "needs participants")]
    fn empty_participants_rejected() {
        let _ = TwoPhaseCoordinator::new(g(), vec![]);
    }

    #[test]
    fn retransmit_targets_only_missing_voters_and_ackers() {
        let mut c = TwoPhaseCoordinator::new(g(), sites(3));
        assert_eq!(c.retransmit(), None, "nothing outstanding before voting");
        for s in sites(3) {
            c.on_subtxn_ack(s, true);
        }
        assert_eq!(c.retransmit(), Some(CoordAction::SendVoteReq(sites(3))));
        c.on_vote(SiteId(1), Vote::Yes);
        assert_eq!(
            c.retransmit(),
            Some(CoordAction::SendVoteReq(vec![SiteId(0), SiteId(2)]))
        );
        c.on_vote(SiteId(0), Vote::Yes);
        c.on_vote(SiteId(2), Vote::Yes);
        assert_eq!(
            c.retransmit(),
            Some(CoordAction::SendDecision(true, sites(3)))
        );
        c.on_decision_ack(SiteId(2));
        assert_eq!(
            c.retransmit(),
            Some(CoordAction::SendDecision(true, vec![SiteId(0), SiteId(1)]))
        );
        c.on_decision_ack(SiteId(0));
        c.on_decision_ack(SiteId(1));
        assert_eq!(c.retransmit(), None, "done: timer chain stops");
    }
}
