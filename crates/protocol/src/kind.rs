//! Protocol variants and their policy table.

use o2pc_marking::MarkingProtocol;
use o2pc_site::LockPolicy;
use std::fmt;

/// The commit-protocol variants the suite evaluates against each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ProtocolKind {
    /// Distributed 2PL + standard 2PC: read locks released at VOTE-REQ,
    /// write locks held until the DECISION message (the paper's baseline
    /// and the source of the blocking problem).
    D2pl2pc,
    /// Bare O2PC: all locks released at the commit vote, aborts compensated;
    /// no admission restriction — regular cycles are possible (§4).
    #[default]
    O2pc,
    /// O2PC complemented by protocol P1 (enforces stratification S1).
    O2pcP1,
    /// O2PC complemented by protocol P2 (enforces stratification S2).
    O2pcP2,
    /// O2PC with the "simple" §6.2 restriction (strictest, least concurrency).
    O2pcSimple,
}

impl ProtocolKind {
    /// What a *yes* vote does with the participant's locks.
    pub fn lock_policy(self) -> LockPolicy {
        match self {
            ProtocolKind::D2pl2pc => LockPolicy::HoldWrites,
            _ => LockPolicy::ReleaseAll,
        }
    }

    /// The marking (admission) protocol complementing the commit protocol.
    pub fn marking(self) -> MarkingProtocol {
        match self {
            ProtocolKind::D2pl2pc | ProtocolKind::O2pc => MarkingProtocol::None,
            ProtocolKind::O2pcP1 => MarkingProtocol::P1,
            ProtocolKind::O2pcP2 => MarkingProtocol::P2,
            ProtocolKind::O2pcSimple => MarkingProtocol::Simple,
        }
    }

    /// Does an abort decision trigger compensation (as opposed to a plain
    /// state-based rollback)?
    pub fn compensating(self) -> bool {
        self != ProtocolKind::D2pl2pc
    }

    /// All variants (sweep helpers).
    pub fn all() -> [ProtocolKind; 5] {
        [
            ProtocolKind::D2pl2pc,
            ProtocolKind::O2pc,
            ProtocolKind::O2pcP1,
            ProtocolKind::O2pcP2,
            ProtocolKind::O2pcSimple,
        ]
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::D2pl2pc => write!(f, "2PL-2PC"),
            ProtocolKind::O2pc => write!(f, "O2PC"),
            ProtocolKind::O2pcP1 => write!(f, "O2PC+P1"),
            ProtocolKind::O2pcP2 => write!(f, "O2PC+P2"),
            ProtocolKind::O2pcSimple => write!(f, "O2PC+Simple"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table() {
        assert_eq!(ProtocolKind::D2pl2pc.lock_policy(), LockPolicy::HoldWrites);
        assert_eq!(ProtocolKind::O2pc.lock_policy(), LockPolicy::ReleaseAll);
        assert_eq!(ProtocolKind::O2pcP1.lock_policy(), LockPolicy::ReleaseAll);
        assert_eq!(ProtocolKind::O2pc.marking(), MarkingProtocol::None);
        assert_eq!(ProtocolKind::O2pcP1.marking(), MarkingProtocol::P1);
        assert_eq!(ProtocolKind::O2pcP2.marking(), MarkingProtocol::P2);
        assert_eq!(ProtocolKind::O2pcSimple.marking(), MarkingProtocol::Simple);
        assert!(!ProtocolKind::D2pl2pc.compensating());
        assert!(ProtocolKind::O2pc.compensating());
        assert_eq!(ProtocolKind::all().len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::D2pl2pc.to_string(), "2PL-2PC");
        assert_eq!(ProtocolKind::O2pcP1.to_string(), "O2PC+P1");
    }
}
