//! # o2pc-protocol
//!
//! The commit protocols as *pure state machines*: inputs (acks, votes,
//! timeouts, crash/recovery events) in, actions (messages to send, local
//! decisions) out. No I/O and no clock — the engine (or the threaded
//! transport example) supplies both, which is what lets the identical
//! machine run on the deterministic simulator and on real threads.
//!
//! * [`kind::ProtocolKind`] — the four protocol variants under test:
//!   distributed 2PL + standard 2PC (the baseline), bare O2PC, O2PC+P1,
//!   O2PC+P2 (and the "simple" §6.2 variant). Each maps to a lock-release
//!   policy for participants and a marking protocol for admission control.
//! * [`coordinator::TwoPhaseCoordinator`] — the coordinator of one global
//!   transaction: collect subtransaction acks, solicit votes (VOTE-REQ),
//!   decide (unanimous yes ⇒ commit), log the decision (presumed abort:
//!   the decision is logged before any DECISION message is sent, so a
//!   recovering coordinator can resend it), distribute DECISION, collect
//!   final acks. **The message pattern is identical for 2PC and O2PC** —
//!   the paper's compatibility claim, verified by experiment E6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod kind;
pub mod termination;

pub use coordinator::{CoordAction, CoordState, TwoPhaseCoordinator};
pub use kind::ProtocolKind;
pub use termination::{PeerState, TerminationOutcome, TerminationRound};
